// Tests for the campaign fault-tolerance layer (docs/ROBUSTNESS.md): trial
// isolation, watchdog deadlines, the crash-safe resume journal, and the
// graceful stop flag. The miniature apps mirror campaign_test's ProbeApp but
// add controllable failure modes: throwing on inconsistent restart state and
// spinning forever on it (the watchdog's prey).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "easycrash/crash/campaign.hpp"
#include "easycrash/crash/report.hpp"
#include "easycrash/crash/resilience.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/runtime/tracked.hpp"
#include "easycrash/telemetry/metrics.hpp"

namespace rt = easycrash::runtime;
namespace cr = easycrash::crash;
namespace ms = easycrash::memsim;
namespace tl = easycrash::telemetry;

namespace {

/// Accumulator app with controllable failure behaviour on inconsistent
/// state: FailMode::None behaves like campaign_test's ProbeApp, Throw raises
/// a plain std::runtime_error (a harness bug, not an AppInterrupt), Hang
/// spins on tracked loads forever (only the watchdog can stop it).
class FaultyApp final : public rt::IApp {
 public:
  enum class FailMode { None, Throw, Hang };

  struct Knobs {
    int iterations = 6;
    int cells = 256;
    FailMode failMode = FailMode::None;
  };

  explicit FaultyApp(Knobs knobs) : knobs_(knobs) {}

  [[nodiscard]] const rt::AppInfo& info() const override { return info_; }

  void setup(rt::Runtime& runtime) override {
    runtime.declareRegionCount(2);
    data_ = rt::TrackedArray<std::int64_t>(runtime, "data", knobs_.cells, true);
    sum_ = rt::TrackedScalar<std::int64_t>(runtime, "sum", true);
  }

  void initialize(rt::Runtime& runtime) override {
    (void)runtime;
    for (int i = 0; i < knobs_.cells; ++i) data_.set(i, 0);
    sum_.set(0);
  }

  void iterate(rt::Runtime& runtime, int iteration) override {
    (void)iteration;
    {
      rt::RegionScope region(runtime, 0);
      for (int i = 0; i < knobs_.cells; ++i) data_.set(i, data_.get(i) + 1);
      region.iterationEnd();
    }
    {
      rt::RegionScope region(runtime, 1);
      std::int64_t total = 0;
      for (int i = 0; i < knobs_.cells; ++i) total += data_.get(i);
      if (knobs_.failMode != FailMode::None && !uniform()) {
        if (knobs_.failMode == FailMode::Throw) {
          throw std::runtime_error("faulty: non-uniform state");
        }
        // Hang: spin on tracked loads so the cancellation poll runs.
        for (;;) {
          total += data_.get(0);
        }
      }
      sum_.set(total);
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return knobs_.iterations; }

  [[nodiscard]] bool converged(rt::Runtime& runtime, int iteration) override {
    (void)runtime;
    return iteration >= knobs_.iterations;
  }

  [[nodiscard]] rt::VerifyOutcome verify(rt::Runtime& runtime) override {
    (void)runtime;
    rt::VerifyOutcome out;
    std::int64_t total = 0;
    for (int i = 0; i < knobs_.cells; ++i) total += data_.peek(i);
    const auto expected =
        static_cast<std::int64_t>(knobs_.iterations) * knobs_.cells;
    out.metric = static_cast<double>(total);
    out.pass = total == expected;
    return out;
  }

 private:
  [[nodiscard]] bool uniform() const {
    const std::int64_t first = data_.peek(0);
    for (int s = 1; s < 16; ++s) {
      if (data_.peek((s * 37) % knobs_.cells) != first) return false;
    }
    return true;
  }

  Knobs knobs_;
  rt::AppInfo info_{"faulty", "controllable-failure test app"};
  rt::TrackedArray<std::int64_t> data_;
  rt::TrackedScalar<std::int64_t> sum_;
};

rt::AppFactory faultyFactory(FaultyApp::Knobs knobs) {
  return [knobs] { return std::make_unique<FaultyApp>(knobs); };
}

cr::CampaignConfig tinyConfig(int tests) {
  cr::CampaignConfig config;
  config.numTests = tests;
  config.cache = ms::CacheConfig::tiny();
  return config;
}

std::string tempPath(const char* name) {
  return testing::TempDir() + name;
}

void expectSameRecords(const cr::CampaignResult& a, const cr::CampaignResult& b) {
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    const auto& x = a.tests[i];
    const auto& y = b.tests[i];
    EXPECT_EQ(x.crashAccessIndex, y.crashAccessIndex) << "trial " << i;
    EXPECT_EQ(x.region, y.region) << "trial " << i;
    EXPECT_EQ(x.regionPath, y.regionPath) << "trial " << i;
    EXPECT_EQ(x.crashIteration, y.crashIteration) << "trial " << i;
    EXPECT_EQ(x.restartIteration, y.restartIteration) << "trial " << i;
    EXPECT_EQ(x.response, y.response) << "trial " << i;
    EXPECT_EQ(x.extraIterations, y.extraIterations) << "trial " << i;
    EXPECT_EQ(x.inconsistentRate, y.inconsistentRate) << "trial " << i;
  }
}

std::uint64_t counterValue(const char* name) {
  return tl::MetricsRegistry::instance().counter(name).value();
}

/// RAII guard: resilience tests that request a stop must not leak the
/// process-wide flag into later tests.
struct StopFlagGuard {
  StopFlagGuard() { cr::clearStopFlag(); }
  ~StopFlagGuard() { cr::clearStopFlag(); }
};

}  // namespace

// ---- Determinism ------------------------------------------------------------

TEST(ResilienceTest, ThreadedCampaignMatchesSingleThreaded) {
  auto config = tinyConfig(40);
  config.resilience.isolate = true;
  const auto single = cr::CampaignRunner(faultyFactory({}), config).run();
  config.threads = 4;
  const auto threaded = cr::CampaignRunner(faultyFactory({}), config).run();
  expectSameRecords(single, threaded);
  EXPECT_TRUE(single.failures.empty());
  EXPECT_TRUE(threaded.failures.empty());
}

TEST(ResilienceTest, JournalResumeReproducesCampaignExactly) {
  StopFlagGuard guard;
  const std::string journal = tempPath("resume_roundtrip.jsonl");
  std::remove(journal.c_str());

  auto config = tinyConfig(30);
  config.resilience.isolate = true;
  config.resilience.journalPath = journal;
  config.resilience.journalFlushEvery = 4;
  config.resilience.stopAfterTrials = 11;
  const auto partial = cr::CampaignRunner(faultyFactory({}), config).run();
  EXPECT_TRUE(partial.interrupted);
  EXPECT_LT(partial.tests.size(), 30u);
  EXPECT_GE(partial.tests.size(), 11u);

  cr::clearStopFlag();
  config.resilience.stopAfterTrials = 0;
  config.resilience.resumePath = journal;
  config.threads = 4;  // resume must stay deterministic across thread counts
  const auto resumed = cr::CampaignRunner(faultyFactory({}), config).run();
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_GE(resumed.resumedTrials, partial.tests.size());

  auto freshConfig = tinyConfig(30);
  const auto fresh = cr::CampaignRunner(faultyFactory({}), freshConfig).run();
  expectSameRecords(fresh, resumed);

  // The resumed campaign's CSV is byte-identical to the uninterrupted one.
  std::ostringstream a;
  std::ostringstream b;
  cr::writeCampaignCsv(fresh, a);
  cr::writeCampaignCsv(resumed, b);
  EXPECT_EQ(a.str(), b.str());
  std::remove(journal.c_str());
}

TEST(ResilienceTest, InterruptedSweepJournalResumesOnEitherPath) {
  // Kill a sweep-mode campaign mid-flight (the sweep decides trials in
  // crash-index order, so the journal holds a scattered set of indices),
  // then resume it once per evaluator mode: both must reconstruct the
  // uninterrupted campaign exactly.
  StopFlagGuard guard;
  const std::string journal = tempPath("sweep_resume.jsonl");
  std::remove(journal.c_str());

  auto config = tinyConfig(30);
  config.sweep = true;
  config.resilience.isolate = true;
  config.resilience.journalPath = journal;
  config.resilience.journalFlushEvery = 2;
  config.resilience.stopAfterTrials = 7;
  const auto partial = cr::CampaignRunner(faultyFactory({}), config).run();
  EXPECT_TRUE(partial.interrupted);
  EXPECT_GE(partial.tests.size(), 7u);
  EXPECT_LT(partial.tests.size(), 30u);

  cr::clearStopFlag();
  const auto fresh = cr::CampaignRunner(faultyFactory({}), tinyConfig(30)).run();

  for (const bool sweepOnResume : {true, false}) {
    cr::clearStopFlag();
    auto resumeConfig = tinyConfig(30);
    resumeConfig.sweep = sweepOnResume;
    resumeConfig.resilience.isolate = true;
    resumeConfig.resilience.resumePath = journal;
    const auto resumed = cr::CampaignRunner(faultyFactory({}), resumeConfig).run();
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_GE(resumed.resumedTrials, partial.tests.size());
    expectSameRecords(fresh, resumed);
    std::ostringstream a;
    std::ostringstream b;
    cr::writeCampaignCsv(fresh, a);
    cr::writeCampaignCsv(resumed, b);
    EXPECT_EQ(a.str(), b.str()) << "sweep-on-resume=" << sweepOnResume;
  }
  std::remove(journal.c_str());
}

// ---- Trial isolation --------------------------------------------------------

TEST(ResilienceTest, ThrowingTrialsBecomeFailuresNotAborts) {
  FaultyApp::Knobs knobs;
  knobs.failMode = FaultyApp::FailMode::Throw;
  auto config = tinyConfig(40);
  config.resilience.isolate = true;
  config.resilience.maxRetries = 0;
  const auto before = counterValue("campaign.trial_failures");
  const auto result = cr::CampaignRunner(faultyFactory(knobs), config).run();
  EXPECT_FALSE(result.interrupted);
  EXPECT_GT(result.failures.size(), 0u) << "expected some restarts to throw";
  EXPECT_EQ(result.tests.size() + result.failures.size(), 40u);
  EXPECT_EQ(counterValue("campaign.trial_failures") - before,
            result.failures.size());
  for (const auto& failure : result.failures) {
    EXPECT_FALSE(failure.timeout);
    EXPECT_NE(failure.reason.find("non-uniform"), std::string::npos);
    EXPECT_EQ(failure.attempts, 1);
  }
  // Failed trials are excluded from the S1-S4 statistics.
  const auto counts = result.responseCounts();
  EXPECT_EQ(static_cast<std::size_t>(counts[0] + counts[1] + counts[2] + counts[3]),
            result.tests.size());
}

TEST(ResilienceTest, WithoutIsolationFirstThrowAborts) {
  FaultyApp::Knobs knobs;
  knobs.failMode = FaultyApp::FailMode::Throw;
  auto config = tinyConfig(40);
  config.resilience.isolate = false;
  EXPECT_THROW(cr::CampaignRunner(faultyFactory(knobs), config).run(),
               std::runtime_error);
}

TEST(ResilienceTest, FailureBudgetAbortsTheCampaign) {
  FaultyApp::Knobs knobs;
  knobs.failMode = FaultyApp::FailMode::Throw;
  auto config = tinyConfig(40);
  config.resilience.isolate = true;
  config.resilience.maxRetries = 0;
  config.resilience.maxFailures = 0;
  EXPECT_THROW(cr::CampaignRunner(faultyFactory(knobs), config).run(),
               std::runtime_error);
}

TEST(ResilienceTest, RetriesAreCountedOnPermanentFailures) {
  FaultyApp::Knobs knobs;
  knobs.failMode = FaultyApp::FailMode::Throw;
  auto config = tinyConfig(20);
  config.resilience.isolate = true;
  config.resilience.maxRetries = 2;
  const auto before = counterValue("campaign.trial_retries");
  const auto result = cr::CampaignRunner(faultyFactory(knobs), config).run();
  ASSERT_GT(result.failures.size(), 0u);
  for (const auto& failure : result.failures) EXPECT_EQ(failure.attempts, 3);
  EXPECT_EQ(counterValue("campaign.trial_retries") - before,
            2 * result.failures.size());
}

// ---- Watchdog ---------------------------------------------------------------

TEST(ResilienceTest, WatchdogCancelsHungTrials) {
  if (!rt::kWatchdogCompiledIn) {
    GTEST_SKIP() << "EASYCRASH_WATCHDOG is OFF";
  }
  FaultyApp::Knobs knobs;
  knobs.failMode = FaultyApp::FailMode::Hang;
  auto config = tinyConfig(6);
  config.threads = 2;
  config.resilience.isolate = true;
  config.resilience.maxRetries = 0;
  config.resilience.trialTimeoutMs = 150;
  const auto before = counterValue("campaign.trial_timeouts");
  const auto result = cr::CampaignRunner(faultyFactory(knobs), config).run();
  EXPECT_GT(result.failures.size(), 0u) << "expected hung restarts";
  EXPECT_EQ(result.tests.size() + result.failures.size(), 6u)
      << "non-hanging trials must still complete";
  std::uint64_t timeouts = 0;
  for (const auto& failure : result.failures) {
    if (failure.timeout) {
      ++timeouts;
      EXPECT_NE(failure.reason.find("watchdog"), std::string::npos);
    }
  }
  EXPECT_GT(timeouts, 0u);
  EXPECT_EQ(counterValue("campaign.trial_timeouts") - before, timeouts);
}

TEST(ResilienceTest, WatchdogArmDisarmLifecycle) {
  cr::Watchdog watchdog(std::chrono::milliseconds(40), 2);
  std::atomic<bool>& flag = watchdog.arm(0);
  EXPECT_FALSE(flag.load());
  EXPECT_FALSE(watchdog.disarm(0));  // deadline has not passed
  watchdog.arm(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_TRUE(flag.load()) << "monitor should have fired the deadline";
  EXPECT_TRUE(watchdog.disarm(0));
  // Re-arming clears the flag for the next attempt.
  EXPECT_FALSE(watchdog.arm(0).load());
  EXPECT_FALSE(watchdog.disarm(0));
}

TEST(ResilienceTest, WatchdogBudgetFactorScalesTheDeadline) {
  cr::Watchdog watchdog(std::chrono::milliseconds(40), 1);
  // factor 5: this arming's deadline is 200 ms, so well past the 40 ms base
  // the flag must not have fired.
  std::atomic<bool>& flag = watchdog.arm(0, 5.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(flag.load()) << "budgeted deadline must outlive the base timeout";
  EXPECT_FALSE(watchdog.disarm(0));
  // Sub-unit factors clamp to 1: the base deadline still applies.
  std::atomic<bool>& clamped = watchdog.arm(0, 0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_TRUE(clamped.load()) << "clamped factor keeps the base deadline";
  EXPECT_TRUE(watchdog.disarm(0));
}

namespace {

/// FaultyApp with a fixed wall-clock cost per iteration: trial duration
/// scales with the crash index, which is exactly what the per-trial budget
/// model must absorb. Sleep-driven so load on the CI machine cannot shrink
/// the cost below the nominal value.
class SleepyApp final : public rt::IApp {
 public:
  void setup(rt::Runtime& runtime) override {
    runtime.declareRegionCount(1);
    data_ = rt::TrackedArray<std::int64_t>(runtime, "data", kCells, true);
  }

  void initialize(rt::Runtime& runtime) override {
    (void)runtime;
    for (int i = 0; i < kCells; ++i) data_.set(i, 0);
  }

  void iterate(rt::Runtime& runtime, int iteration) override {
    (void)iteration;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    rt::RegionScope region(runtime, 0);
    for (int i = 0; i < kCells; ++i) data_.set(i, data_.get(i) + 1);
    region.iterationEnd();
  }

  [[nodiscard]] const rt::AppInfo& info() const override { return info_; }
  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] bool converged(rt::Runtime& runtime, int iteration) override {
    (void)runtime;
    return iteration >= kIterations;
  }

  [[nodiscard]] rt::VerifyOutcome verify(rt::Runtime& runtime) override {
    (void)runtime;
    rt::VerifyOutcome out;
    std::int64_t total = 0;
    for (int i = 0; i < kCells; ++i) total += data_.peek(i);
    out.metric = static_cast<double>(total);
    out.pass = total == static_cast<std::int64_t>(kIterations) * kCells;
    return out;
  }

  static constexpr int kIterations = 8;
  static constexpr int kCells = 32;

 private:
  rt::AppInfo info_{"sleepy", "fixed wall-clock cost per iteration"};
  rt::TrackedArray<std::int64_t> data_;
};

}  // namespace

TEST(ResilienceTest, LateCrashTrialsFitTheScaledBudget) {
  // Regression for the flat-deadline bug: the golden run takes ~40 ms
  // (8 iterations x 5 ms), and with the 55 ms base deadline below, a
  // late-crash trial — a near-complete crashing run plus a restart that
  // re-runs from scratch — costs ~80 ms of sleeps and would be cancelled
  // spuriously. The per-trial budget (crash fraction + maxIterationFactor)
  // scales the deadline to ~165 ms, so no trial may time out.
  const std::uint64_t before = counterValue("campaign.trial_timeouts");
  auto config = tinyConfig(6);
  config.sweep = false;  // the per-trial path arms one whole-trial budget
  config.resilience.isolate = true;
  config.resilience.maxRetries = 0;
  config.resilience.trialTimeoutMs = 55;
  const auto factory = [] { return std::make_unique<SleepyApp>(); };
  const auto result = cr::CampaignRunner(factory, config).run();
  EXPECT_TRUE(result.failures.empty())
      << "slow late-crash trials must fit the scaled watchdog budget";
  EXPECT_EQ(result.tests.size(), 6u);
  EXPECT_EQ(counterValue("campaign.trial_timeouts") - before, 0u);
}

// ---- Journal ----------------------------------------------------------------

TEST(ResilienceTest, JournalRoundTripsTrialsAndFailures) {
  const std::string path = tempPath("journal_roundtrip.jsonl");
  std::remove(path.c_str());
  cr::JournalHeader header;
  header.app = "probe";
  header.seed = 7;
  header.tests = 3;
  header.mode = "nvm";
  header.planFingerprint = 0xFEEDFACECAFEBEEFull;  // exceeds 2^53: must survive
  header.windowAccesses = 123456;

  cr::CrashTestRecord record;
  record.crashAccessIndex = 42;
  record.region = 1;
  record.regionPath = {0, 1};
  record.crashIteration = 3;
  record.restartIteration = 4;
  record.response = cr::Response::S2;
  record.extraIterations = 2;
  record.inconsistentRate[1] = 0.12345678901234567;
  record.note = "quoted \"note\"";

  cr::TrialFailure failure;
  failure.trial = 1;
  failure.crashAccessIndex = 99;
  failure.timeout = true;
  failure.attempts = 2;
  failure.reason = "watchdog deadline (150 ms)";
  failure.regionPath = "R1>R2";

  {
    cr::TrialJournal journal(path, header, 1);
    journal.recordTrial(0, record);
    journal.recordFailure(failure);
    journal.close();
  }

  const auto replay = cr::readJournal(path);
  EXPECT_EQ(replay.header.app, "probe");
  EXPECT_EQ(replay.header.seed, 7u);
  EXPECT_EQ(replay.header.tests, 3);
  EXPECT_EQ(replay.header.mode, "nvm");
  EXPECT_EQ(replay.header.planFingerprint, 0xFEEDFACECAFEBEEFull);
  EXPECT_EQ(replay.header.windowAccesses, 123456u);
  ASSERT_EQ(replay.trials.size(), 1u);
  const auto& r = replay.trials.at(0);
  EXPECT_EQ(r.crashAccessIndex, 42u);
  EXPECT_EQ(r.region, 1);
  EXPECT_EQ(r.regionPath, (std::vector<rt::PointId>{0, 1}));
  EXPECT_EQ(r.response, cr::Response::S2);
  EXPECT_EQ(r.extraIterations, 2);
  EXPECT_EQ(r.inconsistentRate.at(1), 0.12345678901234567);  // exact round trip
  EXPECT_EQ(r.note, "quoted \"note\"");
  ASSERT_EQ(replay.failures.size(), 1u);
  const auto& f = replay.failures.at(1);
  EXPECT_TRUE(f.timeout);
  EXPECT_EQ(f.attempts, 2);
  EXPECT_EQ(f.reason, "watchdog deadline (150 ms)");
  EXPECT_EQ(f.regionPath, "R1>R2");
  std::remove(path.c_str());
}

namespace {

std::vector<std::string> fileLines(const std::string& path) {
  std::ifstream is(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

}  // namespace

TEST(ResilienceTest, JournalPersistsOutOfOrderDecisionsAsSegments) {
  // The sweep evaluator decides trials in crash-index order, so decided
  // test indices are scattered: every one of them must still be durable.
  // With flushEvery=1, the first decision lands in the compacted base
  // segment and the rest are appended in decision order — O(batch) per
  // flush instead of rewriting the whole file. close() then compacts.
  const std::string path = tempPath("journal_prefix.jsonl");
  std::remove(path.c_str());
  cr::JournalHeader header;
  header.app = "probe";
  header.tests = 10;
  header.mode = "nvm";
  {
    cr::TrialJournal journal(path, header, 1);
    cr::CrashTestRecord record;
    journal.recordTrial(5, record);  // gap: trials 0..4 still undecided
    journal.recordTrial(0, record);
    journal.recordTrial(8, record);

    // Mid-flight: the header declares the segment discipline and the file
    // shows the base segment (trial 5) followed by decision-order appends.
    const auto lines = fileLines(path);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_NE(lines[0].find("\"format\":\"segments\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"trial\":5"), std::string::npos);
    EXPECT_NE(lines[2].find("\"trial\":0"), std::string::npos);
    EXPECT_NE(lines[3].find("\"trial\":8"), std::string::npos);
    // And a reader at this instant (a crashed campaign's resume) compacts.
    const auto midFlight = cr::readJournal(path);
    EXPECT_EQ(midFlight.trials.size(), 3u) << "every decided trial is durable";

    journal.close();
  }
  // After close the journal is canonical: test-index sorted, so campaigns
  // that decide the same trials in any order leave byte-identical files.
  const auto lines = fileLines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[1].find("\"trial\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"trial\":5"), std::string::npos);
  EXPECT_NE(lines[3].find("\"trial\":8"), std::string::npos);
  const auto replay = cr::readJournal(path);
  EXPECT_EQ(replay.trials.size(), 3u);
  EXPECT_TRUE(replay.trials.count(0));
  EXPECT_TRUE(replay.trials.count(5));
  EXPECT_TRUE(replay.trials.count(8));
  std::remove(path.c_str());
}

TEST(ResilienceTest, JournalBatchesAppendsByFlushCadence) {
  // flushEvery=3: the base segment holds the first three decisions sorted
  // by test index; the fourth is only in memory until close() flushes and
  // compacts.
  const std::string path = tempPath("journal_batched.jsonl");
  std::remove(path.c_str());
  cr::JournalHeader header;
  header.app = "probe";
  header.tests = 10;
  header.mode = "nvm";
  {
    cr::TrialJournal journal(path, header, 3);
    cr::CrashTestRecord record;
    journal.recordTrial(7, record);
    journal.recordTrial(2, record);
    journal.recordTrial(4, record);  // third decision: base segment flushes
    const auto base = fileLines(path);
    ASSERT_EQ(base.size(), 4u);
    EXPECT_NE(base[1].find("\"trial\":2"), std::string::npos);
    EXPECT_NE(base[2].find("\"trial\":4"), std::string::npos);
    EXPECT_NE(base[3].find("\"trial\":7"), std::string::npos);
    journal.recordTrial(1, record);  // pending until the close-time flush
    EXPECT_EQ(fileLines(path).size(), 4u);
    journal.close();
  }
  const auto lines = fileLines(path);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[1].find("\"trial\":1"), std::string::npos) << "compacted on close";
  const auto replay = cr::readJournal(path);
  EXPECT_EQ(replay.trials.size(), 4u);
  std::remove(path.c_str());
}

TEST(ResilienceTest, ReadJournalCompactsDuplicateIndicesLastWins) {
  // Appended segments may re-decide an index (e.g. across resume cycles
  // writing into the same path): the reader keeps the last record.
  const std::string path = tempPath("journal_dupes.jsonl");
  {
    std::ofstream os(path);
    os << R"({"type":"campaign_header","app":"probe","seed":1,"tests":5,)"
       << R"("mode":"nvm","plan_fingerprint":"1","window_accesses":10,)"
       << R"("format":"segments"})" << '\n';
    os << R"({"type":"trial","trial":0,"crash_access":3,"region":-1,)"
       << R"("region_path":[],"crash_iteration":1,"restart_iteration":1,)"
       << R"("response":"S4","extra_iterations":0,"rates":{},"note":"old"})" << '\n';
    os << R"({"type":"trial","trial":0,"crash_access":3,"region":-1,)"
       << R"("region_path":[],"crash_iteration":1,"restart_iteration":1,)"
       << R"("response":"S1","extra_iterations":0,"rates":{},"note":"new"})" << '\n';
  }
  const auto replay = cr::readJournal(path);
  ASSERT_EQ(replay.trials.size(), 1u);
  EXPECT_EQ(replay.trials.at(0).response, cr::Response::S1);
  EXPECT_EQ(replay.trials.at(0).note, "new");
  std::remove(path.c_str());
}

TEST(ResilienceTest, ResumeRejectsMismatchedJournal) {
  StopFlagGuard guard;
  const std::string journal = tempPath("resume_mismatch.jsonl");
  std::remove(journal.c_str());
  auto config = tinyConfig(10);
  config.resilience.isolate = true;
  config.resilience.journalPath = journal;
  (void)cr::CampaignRunner(faultyFactory({}), config).run();

  auto other = config;
  other.resilience.journalPath.clear();
  other.resilience.resumePath = journal;
  other.seed = config.seed + 1;  // different campaign: different crash draw
  EXPECT_THROW(cr::CampaignRunner(faultyFactory({}), other).run(),
               std::exception);
  std::remove(journal.c_str());
}

TEST(ResilienceTest, ReadJournalToleratesSegmentTornByKilledWorker) {
  // A SIGKILLed campaign (or a worker death taking the process down) can
  // tear an APPENDED segment mid-record, after a healthy base segment. The
  // reader must keep everything before the torn tail — including earlier
  // appended records — and --resume into the same path must repair the
  // file by compaction.
  const std::string path = tempPath("journal_torn_segment.jsonl");
  std::remove(path.c_str());
  cr::JournalHeader header;
  header.app = "probe";
  header.tests = 10;
  header.mode = "nvm";
  {
    // Base segment (3 entries) + one appended segment (2 entries), torn by
    // truncating the file mid-way through the final record. No close():
    // close would compact and hide the tear.
    cr::TrialJournal journal(path, header, 1);
    cr::CrashTestRecord record;
    journal.recordTrial(4, record);
    journal.recordTrial(1, record);
    journal.recordTrial(7, record);
    journal.recordTrial(2, record);
    journal.recordTrial(9, record);
    journal.flush();
    // Leak the journal's buffered state deliberately: truncate on disk.
    std::ifstream is(path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string full = buffer.str();
    const auto lastLine = full.rfind("{\"type\":\"trial\",\"trial\":9");
    ASSERT_NE(lastLine, std::string::npos);
    std::ofstream os(path, std::ios::trunc);
    os << full.substr(0, lastLine + 20);  // torn mid-record
    journal.close();  // rewrites; but we re-tear to simulate the kill
    std::ofstream os2(path, std::ios::trunc);
    os2 << full.substr(0, lastLine + 20);
  }
  const auto replay = cr::readJournal(path);
  EXPECT_EQ(replay.trials.size(), 4u) << "base + intact appended entries";
  EXPECT_TRUE(replay.trials.count(1));
  EXPECT_TRUE(replay.trials.count(4));
  EXPECT_TRUE(replay.trials.count(7));
  EXPECT_TRUE(replay.trials.count(2));
  EXPECT_FALSE(replay.trials.count(9)) << "torn record must not resurrect";

  // Resuming into the same path repairs it: the rewritten journal is fully
  // compacted and parses with no torn tail.
  {
    cr::TrialJournal repaired(path, header, 1);
    for (const auto& [index, record] : replay.trials) {
      repaired.recordTrial(index, record);
    }
    cr::CrashTestRecord fresh;
    repaired.recordTrial(9, fresh);
    repaired.close();
  }
  const auto again = cr::readJournal(path);
  EXPECT_EQ(again.trials.size(), 5u);
  const auto lines = fileLines(path);
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines.back().find("\"trial\":9"), std::string::npos)
      << "compacted journal is test-index sorted with the repaired record";
  std::remove(path.c_str());
}

TEST(ResilienceTest, FailureKindRoundTripsThroughTheJournal) {
  const std::string path = tempPath("journal_kind.jsonl");
  std::remove(path.c_str());
  cr::JournalHeader header;
  header.app = "probe";
  header.tests = 8;
  header.mode = "nvm";
  {
    cr::TrialJournal journal(path, header, 1);
    cr::TrialFailure crashed;
    crashed.trial = 0;
    crashed.kind = "crashed";
    crashed.reason = "worker killed by signal 11";
    crashed.attempts = 1;
    journal.recordFailure(crashed);
    cr::TrialFailure timeout;
    timeout.trial = 1;
    timeout.kind = "timeout";
    timeout.timeout = true;
    timeout.reason = "watchdog";
    timeout.attempts = 2;
    journal.recordFailure(timeout);
    journal.close();
  }
  const auto replay = cr::readJournal(path);
  ASSERT_EQ(replay.failures.size(), 2u);
  EXPECT_EQ(replay.failures.at(0).kind, "crashed");
  EXPECT_FALSE(replay.failures.at(0).timeout);
  EXPECT_EQ(replay.failures.at(1).kind, "timeout");
  EXPECT_TRUE(replay.failures.at(1).timeout);
  std::remove(path.c_str());
}

TEST(ResilienceTest, LegacyFailureRecordsDefaultTheirKind) {
  // Journals written before the fork evaluator carry no "kind": the reader
  // derives it from the timeout flag so downstream consumers always see one.
  const std::string path = tempPath("journal_legacy_kind.jsonl");
  {
    std::ofstream os(path);
    os << R"({"type":"campaign_header","app":"probe","seed":1,"tests":5,)"
       << R"("mode":"nvm","plan_fingerprint":"1","window_accesses":10})" << '\n';
    os << R"({"type":"trial_failure","trial":0,"crash_access":3,"timeout":false,)"
       << R"("attempts":1,"reason":"boom","region_path":""})" << '\n';
    os << R"({"type":"trial_failure","trial":1,"crash_access":4,"timeout":true,)"
       << R"("attempts":1,"reason":"slow","region_path":""})" << '\n';
  }
  const auto replay = cr::readJournal(path);
  ASSERT_EQ(replay.failures.size(), 2u);
  EXPECT_EQ(replay.failures.at(0).kind, "exception");
  EXPECT_EQ(replay.failures.at(1).kind, "timeout");
  std::remove(path.c_str());
}

TEST(ResilienceTest, RetryBackoffIsDeterministicDoublingAndCapped) {
  cr::ResilienceConfig res;
  res.retryBackoffMs = 25;
  res.retryBackoffMaxMs = 2000;
  // Deterministic: same (seed, trial, attempt) -> same sleep.
  EXPECT_EQ(cr::retryBackoffMs(res, 42, 3, 1), cr::retryBackoffMs(res, 42, 3, 1));
  // Jitter separates trials and attempts (with overwhelming probability for
  // these fixed inputs — the values are pinned by the seeded RNG).
  const auto a1 = cr::retryBackoffMs(res, 42, 3, 1);
  const auto a2 = cr::retryBackoffMs(res, 42, 3, 2);
  const auto a3 = cr::retryBackoffMs(res, 42, 3, 3);
  // Exponential base: attempt k draws from [base*2^(k-1), 1.5*base*2^(k-1)].
  EXPECT_GE(a1, 25u);
  EXPECT_LE(a1, 38u);
  EXPECT_GE(a2, 50u);
  EXPECT_LE(a2, 75u);
  EXPECT_GE(a3, 100u);
  EXPECT_LE(a3, 150u);
  // The cap bounds late attempts.
  EXPECT_EQ(cr::retryBackoffMs(res, 42, 3, 30), 2000u);
  // Disabled backoff sleeps zero.
  res.retryBackoffMs = 0;
  EXPECT_EQ(cr::retryBackoffMs(res, 42, 3, 1), 0u);
}

TEST(ResilienceTest, ReadJournalToleratesTornFinalLine) {
  const std::string path = tempPath("journal_torn.jsonl");
  {
    std::ofstream os(path);
    os << R"({"type":"campaign_header","app":"probe","seed":1,"tests":5,)"
       << R"("mode":"nvm","plan_fingerprint":"1","window_accesses":10})" << '\n';
    os << R"({"type":"trial","trial":0,"crash_access":3,"region":-1,)"
       << R"("region_path":[],"crash_iteration":1,"restart_iteration":1,)"
       << R"("response":"S1","extra_iterations":0,"rates":{},"note":""})" << '\n';
    os << R"({"type":"trial","trial":1,"crash_ac)";  // torn mid-record
  }
  const auto replay = cr::readJournal(path);
  EXPECT_EQ(replay.trials.size(), 1u);
  std::remove(path.c_str());
}

// ---- Graceful interruption --------------------------------------------------

TEST(ResilienceTest, StopFlagInterruptsTheCampaignCleanly) {
  StopFlagGuard guard;
  auto config = tinyConfig(30);
  config.resilience.isolate = true;
  config.resilience.stopAfterTrials = 5;
  const auto result = cr::CampaignRunner(faultyFactory({}), config).run();
  EXPECT_TRUE(result.interrupted);
  EXPECT_TRUE(cr::stopRequested());
  EXPECT_GE(result.tests.size(), 5u);
  EXPECT_LT(result.tests.size(), 30u);
  EXPECT_EQ(result.plannedTests, 30);
  // The partial summary announces the interruption.
  std::ostringstream os;
  cr::writeCampaignSummary(result, os);
  EXPECT_NE(os.str().find("INTERRUPTED"), std::string::npos);
}

// ---- Atomic file replacement ------------------------------------------------

TEST(ResilienceTest, AtomicWriteFileReplacesContent) {
  const std::string path = tempPath("atomic_write.txt");
  cr::atomicWriteFile(path, "first\n");
  cr::atomicWriteFile(path, "second\n");
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  EXPECT_EQ(buffer.str(), "second\n");
  // No temp file is left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(ResilienceTest, AtomicWriteFileThrowsOnUnwritablePath) {
  EXPECT_THROW(cr::atomicWriteFile("/nonexistent-dir/x/y.txt", "data"),
               std::runtime_error);
}
