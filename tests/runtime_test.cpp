// Tests for the tracked-memory runtime: object registry, tracked accessors,
// persistence API, region markers, plan execution and crash injection.
#include <cstdint>
#include <cstring>
#include <span>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/runtime/runtime.hpp"
#include "easycrash/runtime/tracked.hpp"

namespace rt = easycrash::runtime;
namespace ms = easycrash::memsim;

namespace {

rt::Runtime makeRuntime() { return rt::Runtime(ms::CacheConfig::tiny()); }

}  // namespace

TEST(Registry, AllocationsAreBlockAligned) {
  auto runtime = makeRuntime();
  const auto a = runtime.allocate("a", 10, true);
  const auto b = runtime.allocate("b", 100, true);
  EXPECT_EQ(runtime.object(a).addr % 64, 0u);
  EXPECT_EQ(runtime.object(b).addr % 64, 0u);
  EXPECT_GE(runtime.object(b).addr, runtime.object(a).addr + 64);
}

TEST(Registry, DuplicateNamesRejected) {
  auto runtime = makeRuntime();
  (void)runtime.allocate("x", 8, true);
  EXPECT_THROW((void)runtime.allocate("x", 8, true), std::logic_error);
}

TEST(Registry, FindObjectByName) {
  auto runtime = makeRuntime();
  const auto id = runtime.allocate("needle", 8, false);
  EXPECT_EQ(runtime.findObject("needle"), id);
  EXPECT_FALSE(runtime.findObject("missing").has_value());
}

TEST(Registry, CandidateFiltering) {
  auto runtime = makeRuntime();
  (void)runtime.allocate("cand", 8, true);
  (void)runtime.allocate("temp", 8, false);
  const auto candidates = runtime.candidateObjects();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(runtime.object(candidates[0]).name, "cand");
}

TEST(Registry, FootprintGrowsWithAllocations) {
  auto runtime = makeRuntime();
  const auto before = runtime.footprintBytes();
  (void)runtime.allocate("big", 1000, true);
  EXPECT_GE(runtime.footprintBytes(), before + 1000);
}

TEST(Registry, ZeroByteAllocationRejected) {
  auto runtime = makeRuntime();
  EXPECT_THROW((void)runtime.allocate("empty", 0, true), std::logic_error);
}

TEST(TrackedArrayTest, GetSetRoundTrip) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 16, true);
  a.set(3, 2.5);
  EXPECT_DOUBLE_EQ(a.get(3), 2.5);
  EXPECT_DOUBLE_EQ(a.peek(3), 2.5);
}

TEST(TrackedArrayTest, ProxyAssignmentAndCompound) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 8, true);
  a[0] = 4.0;
  a[0] += 1.0;
  a[0] *= 2.0;
  a[0] -= 3.0;
  a[0] /= 7.0;
  EXPECT_DOUBLE_EQ(a.get(0), 1.0);
}

TEST(TrackedArrayTest, ProxyToProxyAssignment) {
  auto runtime = makeRuntime();
  rt::TrackedArray<int> a(runtime, "a", 4, true);
  a.set(0, 9);
  a[1] = a[0];
  EXPECT_EQ(a.get(1), 9);
}

TEST(TrackedArrayTest, OutOfBoundsThrows) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 4, true);
  EXPECT_THROW((void)a.get(4), std::logic_error);
  EXPECT_THROW(a.set(100, 1.0), std::logic_error);
}

TEST(TrackedScalarTest, RoundTrip) {
  auto runtime = makeRuntime();
  rt::TrackedScalar<double> s(runtime, "s", true);
  s.set(3.14);
  EXPECT_DOUBLE_EQ(s.get(), 3.14);
  EXPECT_DOUBLE_EQ(s.peek(), 3.14);
}

TEST(Persistence, PersistThenCrashKeepsValues) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 32, true);
  for (int i = 0; i < 32; ++i) a.set(i, i * 1.5);
  runtime.persistObject(a.id());
  runtime.powerLoss();
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(a.peek(i), i * 1.5);
}

TEST(Persistence, UnpersistedValuesMayBeLost) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 4, true);  // fits in the cache
  a.set(0, 7.0);
  runtime.powerLoss();
  EXPECT_DOUBLE_EQ(a.peek(0), 0.0) << "dirty cached value must not survive";
}

TEST(Persistence, DumpAndRestoreRoundTrip) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 16, true);
  for (int i = 0; i < 16; ++i) a.set(i, i + 0.25);
  runtime.persistObject(a.id());
  const auto dump = runtime.dumpObjectNvm(a.id());

  auto runtime2 = makeRuntime();
  rt::TrackedArray<double> b(runtime2, "a", 16, true);
  runtime2.restoreObject(b.id(), dump);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(b.get(i), i + 0.25);
}

TEST(Persistence, RestoreSizeMismatchThrows) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 16, true);
  std::vector<std::uint8_t> wrong(8, 0);
  EXPECT_THROW(runtime.restoreObject(a.id(), wrong), std::logic_error);
}

TEST(Persistence, DumpCurrentSeesCachedValues) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 2, true);
  a.set(0, 42.0);  // dirty, not in NVM
  const auto nvm = runtime.dumpObjectNvm(a.id());
  const auto current = runtime.dumpObjectCurrent(a.id());
  EXPECT_NE(nvm, current);
  double v = 0;
  std::memcpy(&v, current.data(), 8);
  EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(Persistence, InconsistentRateReflectsDirtyBytes) {
  auto runtime = makeRuntime();
  rt::TrackedArray<std::uint64_t> a(runtime, "a", 8, true);  // one cache block
  EXPECT_DOUBLE_EQ(runtime.inconsistentRate(a.id()), 0.0);
  // Values with no zero bytes: every byte differs from the zeroed NVM image
  // (the rate counts *differing* bytes, per the paper's definition).
  for (int i = 0; i < 8; ++i) a.set(i, ~static_cast<std::uint64_t>(i));
  EXPECT_DOUBLE_EQ(runtime.inconsistentRate(a.id()), 1.0);
  runtime.persistObject(a.id());
  EXPECT_DOUBLE_EQ(runtime.inconsistentRate(a.id()), 0.0);
}

TEST(Persistence, InconsistentRateCountsOnlyDifferingBytes) {
  auto runtime = makeRuntime();
  rt::TrackedArray<std::uint64_t> a(runtime, "a", 8, true);
  a.set(0, 0x00000000000000FFULL);  // one byte differs from the zero image
  EXPECT_NEAR(runtime.inconsistentRate(a.id()), 1.0 / 64.0, 1e-12);
}

TEST(Bookmark, SurvivesCrash) {
  auto runtime = makeRuntime();
  runtime.bookmarkIteration(17);
  runtime.powerLoss();
  EXPECT_EQ(runtime.bookmarkedIterationNvm(), 17);
}

TEST(Regions, BalancedMarkersTrackActiveRegion) {
  auto runtime = makeRuntime();
  EXPECT_EQ(runtime.activeRegion(), rt::kMainLoopEnd);
  runtime.beginRegion(2);
  EXPECT_EQ(runtime.activeRegion(), 2);
  runtime.endRegion(2);
  EXPECT_EQ(runtime.activeRegion(), rt::kMainLoopEnd);
}

TEST(Regions, UnbalancedEndThrows) {
  auto runtime = makeRuntime();
  runtime.beginRegion(1);
  EXPECT_THROW(runtime.endRegion(2), std::logic_error);
}

TEST(Regions, IterationEndOutsideRegionThrows) {
  auto runtime = makeRuntime();
  EXPECT_THROW(runtime.regionIterationEnd(0), std::logic_error);
}

TEST(Regions, IterationEndsAreCounted) {
  auto runtime = makeRuntime();
  runtime.beginRegion(0);
  runtime.regionIterationEnd(0);
  runtime.regionIterationEnd(0);
  runtime.endRegion(0);
  runtime.mainLoopIterationEnd(1);
  EXPECT_EQ(runtime.regionIterationEnds().at(0), 2u);
  EXPECT_EQ(runtime.regionIterationEnds().at(rt::kMainLoopEnd), 1u);
}

TEST(Plans, EveryNControlsFlushFrequency) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 8, true);
  rt::PersistencePlan plan;
  rt::PersistDirective d;
  d.objects = {a.id()};
  d.everyN = 2;
  plan.points[0] = d;
  runtime.setPlan(plan);

  runtime.beginRegion(0);
  a.set(0, 1.0);
  runtime.regionIterationEnd(0);  // 1st: no flush
  EXPECT_GT(runtime.inconsistentRate(a.id()), 0.0);
  runtime.regionIterationEnd(0);  // 2nd: flush
  EXPECT_DOUBLE_EQ(runtime.inconsistentRate(a.id()), 0.0);
  runtime.endRegion(0);
  EXPECT_EQ(runtime.persistenceOps(), 1u);
}

TEST(Plans, AtRegionEndFlushesOnExit) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 8, true);
  rt::PersistencePlan plan;
  rt::PersistDirective d;
  d.objects = {a.id()};
  d.everyN = 0;
  d.atRegionEnd = true;
  plan.points[3] = d;
  runtime.setPlan(plan);

  runtime.beginRegion(3);
  a.set(0, 5.0);
  runtime.endRegion(3);
  EXPECT_DOUBLE_EQ(runtime.inconsistentRate(a.id()), 0.0);
}

TEST(Plans, MainLoopEndDirective) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 8, true);
  runtime.setPlan(rt::PersistencePlan::atMainLoopEnd({a.id()}));
  a.set(0, 2.0);
  runtime.mainLoopIterationEnd(1);
  EXPECT_DOUBLE_EQ(runtime.inconsistentRate(a.id()), 0.0);
}

TEST(CrashInjection, FiresAtExactAccessIndex) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 64, true);
  runtime.setCrashWindow(true);
  runtime.armCrash(10);
  int performed = 0;
  try {
    for (int i = 0; i < 64; ++i) {
      a.set(i, 1.0);
      ++performed;
    }
    FAIL() << "crash did not fire";
  } catch (const rt::CrashEvent& crash) {
    EXPECT_EQ(crash.accessIndex, 10u);
    EXPECT_EQ(performed, 9);  // the 10th access threw after completing
  }
}

TEST(CrashInjection, OnlyWindowAccessesTick) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 64, true);
  runtime.armCrash(5);
  for (int i = 0; i < 20; ++i) a.set(i, 1.0);  // window inactive: no crash
  EXPECT_EQ(runtime.windowAccesses(), 0u);
  runtime.setCrashWindow(true);
  EXPECT_THROW(
      {
        for (int i = 0; i < 10; ++i) a.set(i, 2.0);
      },
      rt::CrashEvent);
}

TEST(CrashInjection, RegionAttribution) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 64, true);
  runtime.setCrashWindow(true);
  runtime.armCrash(3);
  runtime.beginRegion(7);
  try {
    for (int i = 0; i < 10; ++i) a.set(i, 1.0);
    FAIL();
  } catch (const rt::CrashEvent& crash) {
    EXPECT_EQ(crash.activeRegion, 7);
  }
  runtime.endRegion(7);
}

TEST(CrashInjection, DisarmPreventsCrash) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 64, true);
  runtime.setCrashWindow(true);
  runtime.armCrash(5);
  runtime.disarmCrash();
  for (int i = 0; i < 20; ++i) a.set(i, 1.0);  // must not throw
  EXPECT_EQ(runtime.windowAccesses(), 20u);
}

TEST(CrashInjection, PastIndexRejected) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 8, true);
  runtime.setCrashWindow(true);
  a.set(0, 1.0);
  EXPECT_THROW(runtime.armCrash(1), std::logic_error);
  EXPECT_THROW(runtime.armCrash(0), std::logic_error);
}

TEST(RegionScopeTest, RaiiBalancesOnException) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 64, true);
  runtime.setCrashWindow(true);
  runtime.armCrash(2);
  try {
    rt::RegionScope scope(runtime, 4);
    for (int i = 0; i < 10; ++i) a.set(i, 1.0);
  } catch (const rt::CrashEvent&) {
    // RegionScope's destructor ran during unwinding.
  }
  EXPECT_EQ(runtime.activeRegion(), rt::kMainLoopEnd);
}

TEST(RegionAccounting, AccessesAttributedToRegions) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 64, true);
  runtime.setCrashWindow(true);
  {
    rt::RegionScope scope(runtime, 0);
    for (int i = 0; i < 10; ++i) a.set(i, 1.0);
  }
  {
    rt::RegionScope scope(runtime, 1);
    for (int i = 0; i < 30; ++i) a.set(i, 2.0);
  }
  runtime.setCrashWindow(false);
  EXPECT_EQ(runtime.regionAccesses().at(0), 10u);
  EXPECT_EQ(runtime.regionAccesses().at(1), 30u);
  EXPECT_EQ(runtime.windowAccesses(), 40u);
}

// ---- Bulk range operations (docs/INTERNALS.md "Range access fast path") -----

TEST(TrackedArrayBulk, ZeroLengthRangesAreNoOps) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 16, true);
  runtime.setCrashWindow(true);
  double v = 1.0;
  a.readRange(5, 0, &v);  // the out buffer must stay untouched
  a.writeRange(5, 0, &v);
  a.fillRange(16, 0, 9.0);  // zero length exactly at the end is legal
  EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_EQ(runtime.windowAccesses(), 0u) << "no elements, no clock ticks";
}

TEST(TrackedArrayBulk, SingleElementRangeMatchesGetSet) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 8, true);
  runtime.setCrashWindow(true);
  const double in = 3.25;
  a.writeRange(2, 1, &in);
  double out = 0.0;
  a.readRange(2, 1, &out);
  EXPECT_DOUBLE_EQ(out, 3.25);
  EXPECT_DOUBLE_EQ(a.get(2), 3.25);
  EXPECT_EQ(runtime.windowAccesses(), 3u) << "one tick per logical element";
}

TEST(TrackedArrayBulk, RangesCrossingTheEndThrow) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 8, true);
  double buf[4] = {};
  EXPECT_THROW(a.readRange(6, 3, buf), std::logic_error);
  EXPECT_THROW(a.writeRange(8, 1, buf), std::logic_error);
  EXPECT_THROW(a.fillRange(5, 100, 0.0), std::logic_error);
  EXPECT_THROW(a.readRange(9, 0, buf), std::logic_error);  // start past the end
}

TEST(TrackedArrayBulk, FillCopyAndChunkTraversalRoundTrip) {
  auto runtime = makeRuntime();
  // Larger than kChunkElems so fill/copyFrom/forEachChunk all take several
  // stack-buffer chunks, and deliberately not a multiple of it.
  const std::uint64_t n = rt::TrackedArray<double>::kChunkElems * 2 + 37;
  rt::TrackedArray<double> a(runtime, "a", n, true);
  rt::TrackedArray<double> b(runtime, "b", n, true);
  a.fill(4.5);
  a.set(n - 1, 7.0);
  b.copyFrom(a);
  EXPECT_DOUBLE_EQ(b.get(0), 4.5);
  EXPECT_DOUBLE_EQ(b.get(n - 2), 4.5);
  EXPECT_DOUBLE_EQ(b.get(n - 1), 7.0);
  std::uint64_t seen = 0;
  double sum = 0.0;
  b.forEachChunk([&](std::uint64_t first, std::span<const double> chunk) {
    EXPECT_EQ(first, seen);
    seen += chunk.size();
    for (const double v : chunk) sum += v;
  });
  EXPECT_EQ(seen, n);
  EXPECT_DOUBLE_EQ(sum, 4.5 * static_cast<double>(n - 1) + 7.0);
}

TEST(TrackedArrayBulk, CrashFiresMidRangeAtExactIndex) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 64, true);
  runtime.setCrashWindow(true);
  runtime.armCrash(10);
  std::vector<double> src(64, 2.0);
  try {
    a.writeRange(0, 64, src.data());
    FAIL() << "crash did not fire";
  } catch (const rt::CrashEvent& crash) {
    EXPECT_EQ(crash.accessIndex, 10u);
  }
  // The bulk chunk is clamped so its last element is the trigger, matching
  // the scalar path where the 10th store completes and then throws: elements
  // 0..9 hold the new value, everything after does not.
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.peek(i), 2.0) << "element " << i;
  for (int i = 10; i < 64; ++i) EXPECT_DOUBLE_EQ(a.peek(i), 0.0) << "element " << i;
}

TEST(TrackedArrayBulk, CapturesFireMidRangeWithElementwiseState) {
  auto runtime = makeRuntime();
  rt::TrackedArray<double> a(runtime, "a", 32, true);
  runtime.setCrashWindow(true);
  std::vector<std::uint64_t> fired;
  // Adjacent indices (5, 6) force a one-element bulk chunk in between.
  runtime.armCaptures({5, 6, 20}, [&](const rt::CrashEvent& at) {
    fired.push_back(at.accessIndex);
    // Window index i (1-based) writes element i-1: at capture time the
    // triggering element is applied, the next one is not — exactly the
    // state an element-wise loop would show.
    EXPECT_DOUBLE_EQ(a.peek(at.accessIndex - 1),
                     static_cast<double>(at.accessIndex));
    EXPECT_DOUBLE_EQ(a.peek(at.accessIndex), 0.0);
  });
  std::vector<double> src(32);
  for (int i = 0; i < 32; ++i) src[static_cast<std::size_t>(i)] = i + 1.0;
  a.writeRange(0, 32, src.data());
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{5, 6, 20}));
}

TEST(TrackedArrayBulk, DirectModeBulkOnOffIdentical) {
  // Restarts run in direct-access mode (the NVM image IS the architectural
  // state): the bulk path must produce the same bytes, clock ticks and
  // crash-index semantics there too.
  const auto drive = [](bool bulkOn) {
    auto runtime = makeRuntime();
    runtime.setDirect(true);
    runtime.setBulk(bulkOn);
    rt::TrackedArray<double> a(runtime, "a", 20, true);
    runtime.setCrashWindow(true);
    runtime.armCrash(7);
    std::vector<double> src(20, 5.5);
    std::uint64_t crashedAt = 0;
    try {
      a.writeRange(0, 20, src.data());
    } catch (const rt::CrashEvent& crash) {
      crashedAt = crash.accessIndex;
    }
    return std::tuple{crashedAt, runtime.windowAccesses(),
                      runtime.dumpObjectNvm(a.id())};
  };
  const auto [crashOn, ticksOn, nvmOn] = drive(true);
  const auto [crashOff, ticksOff, nvmOff] = drive(false);
  EXPECT_EQ(crashOn, 7u);
  EXPECT_EQ(crashOn, crashOff);
  EXPECT_EQ(ticksOn, ticksOff);
  EXPECT_EQ(nvmOn, nvmOff) << "direct-mode NVM bytes must match across modes";
  // Elements 0..6 were applied before the crash (direct mode pokes NVM).
  double v = 0.0;
  std::memcpy(&v, nvmOn.data() + 6 * sizeof(double), sizeof(double));
  EXPECT_DOUBLE_EQ(v, 5.5);
  std::memcpy(&v, nvmOn.data() + 7 * sizeof(double), sizeof(double));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(TrackedArrayBulk, BulkOffLowersToIdenticalObservables) {
  auto bulkOn = makeRuntime();
  auto bulkOff = makeRuntime();
  bulkOff.setBulk(false);
  const auto drive = [](rt::Runtime& runtime) {
    rt::TrackedArray<double> a(runtime, "a", 300, true);
    rt::TrackedArray<double> b(runtime, "b", 300, true);
    runtime.setCrashWindow(true);
    a.fill(1.25);
    b.copyFrom(a);
    double sum = 0.0;
    b.forEachChunk([&](std::uint64_t, std::span<const double> chunk) {
      for (const double v : chunk) sum += v;
    });
    runtime.setCrashWindow(false);
    return sum;
  };
  EXPECT_DOUBLE_EQ(drive(bulkOn), drive(bulkOff));
  EXPECT_EQ(bulkOn.windowAccesses(), bulkOff.windowAccesses());
  const auto& on = bulkOn.events();
  const auto& off = bulkOff.events();
  EXPECT_EQ(on.loads, off.loads);
  EXPECT_EQ(on.stores, off.stores);
  EXPECT_EQ(on.hits, off.hits);
  EXPECT_EQ(on.misses, off.misses);
  EXPECT_EQ(on.nvmBlockReads, off.nvmBlockReads);
  EXPECT_EQ(on.nvmBlockWrites, off.nvmBlockWrites);
  // The range diagnostics are the one intentional difference: they count
  // bulk calls, which only the fast path makes.
  EXPECT_GT(on.rangeLoads + on.rangeStores, 0u);
  EXPECT_EQ(off.rangeLoads, 0u);
  EXPECT_EQ(off.rangeStores, 0u);
  EXPECT_EQ(off.rangeSplitBlocks, 0u);
}
