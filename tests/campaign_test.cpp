// Tests for the Driver protocol and the crash-test campaign engine, using a
// purpose-built miniature application whose failure behaviour is fully
// controllable.
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "easycrash/crash/campaign.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/runtime/tracked.hpp"

namespace rt = easycrash::runtime;
namespace cr = easycrash::crash;
namespace ms = easycrash::memsim;

namespace {

/// A controllable test app: accumulates a counter array; verification checks
/// the exact expected sum. Knobs select convergence/interrupt behaviour.
class ProbeApp final : public rt::IApp {
 public:
  struct Knobs {
    int iterations = 6;
    int cells = 256;
    bool interruptOnBadState = false;  // S3 path
    bool tolerant = false;             // loose verification (S1/S2-friendly)
    bool convergenceDriven = false;    // can use extra iterations
  };

  explicit ProbeApp(Knobs knobs) : knobs_(knobs) {}

  [[nodiscard]] const rt::AppInfo& info() const override { return info_; }

  void setup(rt::Runtime& runtime) override {
    runtime.declareRegionCount(2);
    data_ = rt::TrackedArray<std::int64_t>(runtime, "data", knobs_.cells, true);
    sum_ = rt::TrackedScalar<std::int64_t>(runtime, "sum", true);
  }

  void initialize(rt::Runtime& runtime) override {
    (void)runtime;
    for (int i = 0; i < knobs_.cells; ++i) data_.set(i, 0);
    sum_.set(0);
  }

  void iterate(rt::Runtime& runtime, int iteration) override {
    (void)iteration;
    {  // R1: accumulate — lost increments are unrecoverable by re-execution.
      rt::RegionScope region(runtime, 0);
      for (int i = 0; i < knobs_.cells; ++i) {
        data_.set(i, data_.get(i) + 1);
      }
      region.iterationEnd();
    }
    {  // R2: reduce + uniformity invariant (the interrupt path).
      rt::RegionScope region(runtime, 1);
      std::int64_t total = 0;
      for (int i = 0; i < knobs_.cells; ++i) total += data_.get(i);
      if (knobs_.interruptOnBadState) {
        const std::int64_t first = data_.get(0);
        for (int s = 0; s < 16; ++s) {
          if (data_.get((s * 37) % knobs_.cells) != first) {
            throw rt::AppInterrupt{"probe: non-uniform state"};
          }
        }
      }
      sum_.set(total);
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return knobs_.iterations; }

  [[nodiscard]] bool converged(rt::Runtime& runtime, int iteration) override {
    if (!knobs_.convergenceDriven) return iteration >= knobs_.iterations;
    (void)runtime;
    // Converged once the committed sum corresponds to >= nominal iterations.
    return sum_.peek() >=
           static_cast<std::int64_t>(knobs_.iterations) * knobs_.cells;
  }

  [[nodiscard]] rt::VerifyOutcome verify(rt::Runtime& runtime) override {
    (void)runtime;
    rt::VerifyOutcome out;
    std::int64_t total = 0;
    for (int i = 0; i < knobs_.cells; ++i) total += data_.peek(i);
    const auto expected =
        static_cast<std::int64_t>(knobs_.iterations) * knobs_.cells;
    out.metric = static_cast<double>(total);
    out.pass = knobs_.tolerant
                   ? total >= expected / 2 && total <= expected * 3 / 2
                   : total == expected;
    return out;
  }

 private:
  Knobs knobs_;
  rt::AppInfo info_{"probe", "controllable test app"};
  rt::TrackedArray<std::int64_t> data_;
  rt::TrackedScalar<std::int64_t> sum_;
};

rt::AppFactory probeFactory(ProbeApp::Knobs knobs) {
  return [knobs] { return std::make_unique<ProbeApp>(knobs); };
}

cr::CampaignConfig tinyConfig(int tests) {
  cr::CampaignConfig config;
  config.numTests = tests;
  config.cache = ms::CacheConfig::tiny();
  return config;
}

}  // namespace

TEST(DriverTest, FreshRunCompletesAndVerifies) {
  rt::Runtime runtime(ms::CacheConfig::tiny());
  ProbeApp app({});
  const auto result = rt::Driver::freshRun(app, runtime);
  EXPECT_FALSE(result.interrupted);
  EXPECT_TRUE(result.verification.pass);
  EXPECT_EQ(result.finalIteration, 6);
  EXPECT_EQ(result.iterationsExecuted, 6);
  EXPECT_FALSE(result.reachedCap);
}

TEST(DriverTest, RunFromMiddleExecutesRemainingIterations) {
  rt::Runtime runtime(ms::CacheConfig::tiny());
  ProbeApp app({});
  app.setup(runtime);
  app.initialize(runtime);
  const auto result = rt::Driver::run(app, runtime, 4, 6);
  EXPECT_EQ(result.iterationsExecuted, 3);  // iterations 4, 5, 6
  EXPECT_EQ(result.finalIteration, 6);
}

TEST(DriverTest, InterruptIsCaptured) {
  ProbeApp::Knobs knobs;
  knobs.interruptOnBadState = true;
  rt::Runtime runtime(ms::CacheConfig::tiny());
  ProbeApp app(knobs);
  app.setup(runtime);
  app.initialize(runtime);
  // Corrupt one cell so the uniformity invariant trips inside iterate().
  runtime.storeValue<std::int64_t>(runtime.object(1).addr, 99);
  const auto result = rt::Driver::run(app, runtime, 1, 6);
  EXPECT_TRUE(result.interrupted);
  EXPECT_FALSE(result.interruptReason.empty());
}

TEST(CampaignTest, InterruptingProbeProducesS3) {
  ProbeApp::Knobs knobs;
  knobs.interruptOnBadState = true;
  const cr::CampaignRunner runner(probeFactory(knobs), tinyConfig(40));
  const auto result = runner.run();
  EXPECT_GT(result.responseCounts()[2], 0) << "expected some S3 interruptions";
}

TEST(DriverTest, ConvergenceStopsEarly) {
  ProbeApp::Knobs knobs;
  knobs.convergenceDriven = true;
  rt::Runtime runtime(ms::CacheConfig::tiny());
  ProbeApp app(knobs);
  app.setup(runtime);
  app.initialize(runtime);
  const auto result = rt::Driver::run(app, runtime, 1, 20);
  EXPECT_EQ(result.finalIteration, 6);  // sum reaches the target at 6
  EXPECT_FALSE(result.reachedCap);
}

TEST(DriverTest, CapIsReported) {
  ProbeApp::Knobs knobs;
  knobs.convergenceDriven = true;
  knobs.iterations = 100;  // unreachable within the cap below
  rt::Runtime runtime(ms::CacheConfig::tiny());
  ProbeApp app(knobs);
  app.setup(runtime);
  app.initialize(runtime);
  const auto result = rt::Driver::run(app, runtime, 1, 5);
  EXPECT_TRUE(result.reachedCap);
  EXPECT_EQ(result.finalIteration, 5);
}

TEST(CampaignTest, GoldenRunStatsAreSane) {
  const cr::CampaignRunner runner(probeFactory({}), tinyConfig(0));
  const auto golden = runner.goldenRun();
  EXPECT_GT(golden.windowAccesses, 0u);
  EXPECT_EQ(golden.finalIteration, 6);
  EXPECT_EQ(golden.regionCount, 2u);
  EXPECT_GT(golden.footprintBytes, 0u);
  EXPECT_GT(golden.candidateBytes, 0u);
  EXPECT_EQ(golden.regionIterationEnds.at(rt::kMainLoopEnd), 6u);
  // Time shares over the two regions sum to ~1.
  double shareSum = 0.0;
  for (const auto& [region, share] : golden.regionTimeShare) shareSum += share;
  EXPECT_NEAR(shareSum, 1.0, 1e-9);
}

TEST(CampaignTest, StrictProbeMostlyFailsWithoutPersistence) {
  // Exact-sum verification + no flushing: restarts usually see stale data.
  const cr::CampaignRunner runner(probeFactory({}), tinyConfig(30));
  const auto result = runner.run();
  EXPECT_EQ(static_cast<int>(result.tests.size()), 30);
  EXPECT_LT(result.recomputability(), 0.9);
}

TEST(CampaignTest, TolerantProbeRecomputesWell) {
  ProbeApp::Knobs knobs;
  knobs.tolerant = true;
  const cr::CampaignRunner runner(probeFactory(knobs), tinyConfig(30));
  const auto result = runner.run();
  // Re-running an iteration rewrites all of data, so a tolerant check passes.
  EXPECT_GT(result.recomputability(), 0.9);
}

TEST(CampaignTest, PersistencePlanRescuesCacheResidentState) {
  // With a working set that fits in the caches, nothing reaches NVM
  // naturally (the paper's "small footprint" pathology): without flushing,
  // only iteration-1 crashes recompute; with an end-of-iteration flush the
  // NVM image always holds the exact iteration boundary, so every crash
  // recomputes.
  ProbeApp::Knobs knobs;
  knobs.cells = 16;  // 128 bytes — far below the tiny 1KB LLC
  const auto factory = probeFactory(knobs);
  const auto baseline = cr::CampaignRunner(factory, tinyConfig(40)).run();
  EXPECT_LT(baseline.recomputability(), 0.5);

  cr::CampaignConfig withPlan = tinyConfig(40);
  // Objects 1 and 2 are data/sum (0 is the runtime's iterator bookmark).
  withPlan.plan = rt::PersistencePlan::atMainLoopEnd({1, 2});
  const auto persisted = cr::CampaignRunner(factory, withPlan).run();
  EXPECT_DOUBLE_EQ(persisted.recomputability(), 1.0);
}

TEST(CampaignTest, DeterministicForSameSeed) {
  const auto factory = probeFactory({});
  const auto a = cr::CampaignRunner(factory, tinyConfig(15)).run();
  const auto b = cr::CampaignRunner(factory, tinyConfig(15)).run();
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].crashAccessIndex, b.tests[i].crashAccessIndex);
    EXPECT_EQ(a.tests[i].response, b.tests[i].response);
    EXPECT_EQ(a.tests[i].crashIteration, b.tests[i].crashIteration);
  }
}

TEST(CampaignTest, DifferentSeedsSampleDifferentCrashes) {
  const auto factory = probeFactory({});
  auto configB = tinyConfig(15);
  configB.seed = 99;
  const auto a = cr::CampaignRunner(factory, tinyConfig(15)).run();
  const auto b = cr::CampaignRunner(factory, configB).run();
  int same = 0;
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    same += a.tests[i].crashAccessIndex == b.tests[i].crashAccessIndex;
  }
  EXPECT_LT(same, 3);
}

TEST(CampaignTest, CoherentSnapshotsBeatNvmSnapshotsForTolerantApps) {
  // The paper's "verified" methodology copies fully-consistent data. For an
  // error-tolerant application that must recompute at least as often as with
  // the torn NVM image (for trajectory-exact applications the re-executed
  // iteration double-applies — see EXPERIMENTS.md).
  ProbeApp::Knobs knobs;
  knobs.tolerant = true;
  const auto factory = probeFactory(knobs);
  auto coherentConfig = tinyConfig(40);
  coherentConfig.mode = cr::SnapshotMode::Coherent;
  const auto nvm = cr::CampaignRunner(factory, tinyConfig(40)).run();
  const auto coherent = cr::CampaignRunner(factory, coherentConfig).run();
  EXPECT_GE(coherent.recomputability() + 0.05, nvm.recomputability());
}

TEST(CampaignTest, InconsistencyRatesRecorded) {
  const cr::CampaignRunner runner(probeFactory({}), tinyConfig(10));
  const auto result = runner.run();
  for (const auto& test : result.tests) {
    EXPECT_EQ(test.inconsistentRate.size(), 2u);  // data + sum
    for (const auto& [id, rate] : test.inconsistentRate) {
      EXPECT_GE(rate, 0.0);
      EXPECT_LE(rate, 1.0);
    }
  }
}

TEST(CampaignTest, RegionAttributionCoversBothRegions) {
  const cr::CampaignRunner runner(probeFactory({}), tinyConfig(60));
  const auto result = runner.run();
  const auto counts = result.regionTestCounts();
  EXPECT_TRUE(counts.count(0));
  EXPECT_TRUE(counts.count(1));
}

TEST(CampaignTest, ResponseAggregationConsistent) {
  const cr::CampaignRunner runner(probeFactory({}), tinyConfig(25));
  const auto result = runner.run();
  const auto counts = result.responseCounts();
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 25);
  EXPECT_NEAR(result.recomputability(), counts[0] / 25.0, 1e-12);
  EXPECT_NEAR(result.successWithExtra(), (counts[0] + counts[1]) / 25.0, 1e-12);
}

TEST(CampaignTest, RestartIterationNeverExceedsCrashIteration) {
  const cr::CampaignRunner runner(probeFactory({}), tinyConfig(25));
  const auto result = runner.run();
  for (const auto& test : result.tests) {
    EXPECT_GE(test.restartIteration, 1);
    EXPECT_LE(test.restartIteration, test.crashIteration);
  }
}
