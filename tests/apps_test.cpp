// Tests for the 11 instrumented benchmarks: every app must pass its own
// acceptance verification on a golden run, execute a deterministic access
// sequence (the crash-point clock depends on it), match its declared region
// structure, and satisfy the paper's footprint >> LLC selection criterion.
// App-specific numerics are spot-checked where a ground truth exists.
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "easycrash/apps/registry.hpp"
#include "easycrash/crash/campaign.hpp"
#include "easycrash/runtime/runtime.hpp"

namespace ec = easycrash;
using ec::apps::allBenchmarks;
using ec::apps::findBenchmark;

namespace {

class AppSuite : public ::testing::TestWithParam<std::string> {
 protected:
  [[nodiscard]] const ec::apps::BenchmarkEntry& entry() const {
    return findBenchmark(GetParam());
  }
};

std::vector<std::string> appNames() {
  std::vector<std::string> names;
  for (const auto& e : allBenchmarks()) names.push_back(e.name);
  return names;
}

}  // namespace

TEST_P(AppSuite, GoldenRunPassesItsOwnVerification) {
  ec::runtime::Runtime rt;
  auto app = entry().factory();
  const auto result = ec::runtime::Driver::freshRun(*app, rt);
  EXPECT_FALSE(result.interrupted) << result.interruptReason;
  EXPECT_TRUE(result.verification.pass) << result.verification.detail;
}

TEST_P(AppSuite, AccessSequenceIsDeterministic) {
  const auto run = [&] {
    ec::runtime::Runtime rt;
    auto app = entry().factory();
    (void)ec::runtime::Driver::freshRun(*app, rt);
    return rt.windowAccesses();
  };
  EXPECT_EQ(run(), run());
}

TEST_P(AppSuite, DeclaredRegionsAreAllExercised) {
  ec::runtime::Runtime rt;
  auto app = entry().factory();
  (void)ec::runtime::Driver::freshRun(*app, rt);
  const auto regions = rt.regionIterationEnds();
  std::set<ec::runtime::PointId> seen;
  for (const auto& [point, count] : regions) {
    if (point != ec::runtime::kMainLoopEnd) seen.insert(point);
  }
  EXPECT_EQ(seen.size(), rt.regionCount())
      << "every declared region must reach an iteration end";
  for (std::uint32_t r = 0; r < rt.regionCount(); ++r) {
    EXPECT_TRUE(seen.count(static_cast<ec::runtime::PointId>(r)))
        << "region " << r << " never ran";
  }
}

TEST_P(AppSuite, FootprintExceedsLastLevelCache) {
  // Paper §4.1: inputs are chosen so the footprint is larger than the LLC
  // (EP is the deliberate exception: small footprint, mostly cache-resident).
  ec::runtime::Runtime rt;
  auto app = entry().factory();
  app->setup(rt);
  const auto llc = rt.hierarchy().config().llcBytes();
  if (GetParam() == "ep") {
    EXPECT_LE(rt.footprintBytes(), 2 * llc);
  } else {
    EXPECT_GT(rt.footprintBytes(), llc);
  }
}

TEST_P(AppSuite, HasCandidateDataObjects) {
  ec::runtime::Runtime rt;
  auto app = entry().factory();
  app->setup(rt);
  EXPECT_FALSE(rt.candidateObjects().empty());
}

TEST_P(AppSuite, ReadOnlyObjectsAreNotCandidates) {
  ec::runtime::Runtime rt;
  auto app = entry().factory();
  app->setup(rt);
  for (const auto& object : rt.objects()) {
    if (object.readOnly) {
      EXPECT_FALSE(object.candidate)
          << object.name << " is read-only and cannot be a candidate (§5.1)";
    }
  }
}

TEST_P(AppSuite, NominalIterationsPositive) {
  auto app = entry().factory();
  EXPECT_GT(app->nominalIterations(), 0);
}

TEST_P(AppSuite, RegisteredDescriptionMatchesInfo) {
  auto app = entry().factory();
  EXPECT_EQ(app->info().name, entry().name);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, AppSuite, ::testing::ValuesIn(appNames()),
                         [](const auto& info) { return info.param; });

// ---- App-specific numerical ground truths ----------------------------------

TEST(CgApp, SolvesTheLinearSystem) {
  ec::runtime::Runtime rt;
  auto app = findBenchmark("cg").factory();
  const auto result = ec::runtime::Driver::freshRun(*app, rt);
  // verify() metric is the true relative residual ||b - Ax|| / ||b||.
  EXPECT_LT(result.verification.metric, 1e-6);
}

TEST(MgApp, ConvergesToTheReferenceResidual) {
  ec::runtime::Runtime rt;
  auto app = findBenchmark("mg").factory();
  const auto result = ec::runtime::Driver::freshRun(*app, rt);
  // Golden must sit essentially on the reference trajectory.
  EXPECT_LT(result.verification.metric, 1e-9);
}

TEST(FtApp, ChecksumsMatchDirectDftEvaluation) {
  // The golden run's FFT results are validated against direct DFT sums in
  // verify(); the worst absolute deviation is the metric.
  ec::runtime::Runtime rt;
  auto app = findBenchmark("ft").factory();
  const auto result = ec::runtime::Driver::freshRun(*app, rt);
  EXPECT_LT(result.verification.metric, 1e-8);
}

TEST(LuApp, TrackedRunMatchesHostReplayBitwise) {
  ec::runtime::Runtime rt;
  auto app = findBenchmark("lu").factory();
  const auto result = ec::runtime::Driver::freshRun(*app, rt);
  EXPECT_EQ(result.verification.metric, 0.0)
      << "the value-tracking simulator must not alter a single bit";
}

TEST(LuleshApp, TrackedRunMatchesHostReplayBitwise) {
  ec::runtime::Runtime rt;
  auto app = findBenchmark("lulesh").factory();
  const auto result = ec::runtime::Driver::freshRun(*app, rt);
  EXPECT_EQ(result.verification.metric, 0.0);
}

TEST(BotssparApp, FactorisationReconstructsTheMatrix) {
  ec::runtime::Runtime rt;
  auto app = findBenchmark("botsspar").factory();
  const auto result = ec::runtime::Driver::freshRun(*app, rt);
  EXPECT_LT(result.verification.metric, 1e-10);
}

TEST(KmeansApp, ReachesReferenceClusteringQuality) {
  ec::runtime::Runtime rt;
  auto app = findBenchmark("kmeans").factory();
  const auto result = ec::runtime::Driver::freshRun(*app, rt);
  // metric is SSE / reference-SSE; the golden run must essentially match.
  EXPECT_NEAR(result.verification.metric, 1.0, 0.01);
}

TEST(EpApp, AccumulatorsMatchHostReplayExactly) {
  ec::runtime::Runtime rt;
  auto app = findBenchmark("ep").factory();
  const auto result = ec::runtime::Driver::freshRun(*app, rt);
  EXPECT_EQ(result.verification.metric, 0.0);
}

TEST(Registry, FindUnknownBenchmarkThrows) {
  EXPECT_THROW((void)findBenchmark("nonexistent"), std::runtime_error);
}

TEST(Registry, EvaluatedSetExcludesEp) {
  const auto names = ec::apps::evaluatedBenchmarkNames();
  EXPECT_EQ(names.size(), allBenchmarks().size() - 1);
  for (const auto& name : names) EXPECT_NE(name, "ep");
}

TEST(Registry, ElevenBenchmarksRegistered) {
  EXPECT_EQ(allBenchmarks().size(), 11u);
}
