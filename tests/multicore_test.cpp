// Tests for the MESI-style multi-core coherent memory system: coherence
// transitions, invalidations, ownership transfers, crash/flush semantics,
// and a randomized property test against a flat reference memory.
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/common/rng.hpp"
#include "easycrash/memsim/multicore.hpp"

namespace ms = easycrash::memsim;

namespace {

struct McSim {
  McSim(int cores = 2)
      : nvm(64), sys(makeConfig(cores), nvm) {}

  static ms::MulticoreConfig makeConfig(int cores) {
    ms::MulticoreConfig config;
    config.cores = cores;
    config.privateCache = ms::CacheGeometry{512, 2};
    config.sharedLlc = ms::CacheGeometry{2048, 4};
    return config;
  }

  void store64(int core, std::uint64_t addr, std::uint64_t v) {
    sys.store(core, addr, {reinterpret_cast<const std::uint8_t*>(&v), 8});
  }
  std::uint64_t load64(int core, std::uint64_t addr) {
    std::uint64_t v = 0;
    sys.load(core, addr, {reinterpret_cast<std::uint8_t*>(&v), 8});
    return v;
  }
  std::uint64_t peek64(std::uint64_t addr) {
    std::uint64_t v = 0;
    sys.peek(addr, {reinterpret_cast<std::uint8_t*>(&v), 8});
    return v;
  }

  ms::NvmStore nvm;
  ms::MulticoreSystem sys;
};

}  // namespace

TEST(Multicore, CoreSeesItsOwnWrite) {
  McSim s;
  s.store64(0, 0, 42);
  EXPECT_EQ(s.load64(0, 0), 42u);
}

TEST(Multicore, PeerSeesModifiedData) {
  McSim s;
  s.store64(0, 0, 99);  // core 0 holds M
  EXPECT_EQ(s.load64(1, 0), 99u) << "read must snoop the Modified copy";
  EXPECT_GE(s.sys.coreEvents(1).ownershipTransfers, 1u);
}

TEST(Multicore, WriteInvalidatesPeerCopies) {
  McSim s;
  s.store64(0, 0, 1);
  (void)s.load64(1, 0);  // both cores now share the block
  s.store64(0, 0, 2);    // upgrade: must invalidate core 1
  EXPECT_GE(s.sys.coreEvents(0).invalidationsSent, 1u);
  EXPECT_EQ(s.load64(1, 0), 2u) << "core 1 must re-fetch the new value";
}

TEST(Multicore, PingPongWritesStayCoherent) {
  McSim s;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    s.store64(static_cast<int>(i % 2), 0, i);
  }
  EXPECT_EQ(s.load64(0, 0), 50u);
  EXPECT_EQ(s.load64(1, 0), 50u);
  s.sys.checkInvariants();
}

TEST(Multicore, DirtyDataIsNotPersistentUntilFlushed) {
  McSim s;
  s.store64(0, 0, 7);
  std::uint64_t v = 1;
  s.nvm.read(0, {reinterpret_cast<std::uint8_t*>(&v), 8});
  EXPECT_EQ(v, 0u);
  s.sys.flushBlock(0, ms::FlushKind::Clwb);
  s.nvm.read(0, {reinterpret_cast<std::uint8_t*>(&v), 8});
  EXPECT_EQ(v, 7u);
}

TEST(Multicore, FlushFindsTheModifiedCopyOnAnyCore) {
  McSim s(4);
  s.store64(3, 128, 1234);  // M on core 3
  s.sys.flushBlock(128, ms::FlushKind::Clwb);
  std::uint64_t v = 0;
  s.nvm.read(128, {reinterpret_cast<std::uint8_t*>(&v), 8});
  EXPECT_EQ(v, 1234u);
  EXPECT_EQ(s.sys.totalEvents().flushDirty, 1u);
}

TEST(Multicore, FlushClassesMatchResidency) {
  McSim s;
  s.sys.flushBlock(4096, ms::FlushKind::Clflushopt);
  EXPECT_EQ(s.sys.totalEvents().flushNonResident, 1u);
  s.store64(0, 0, 5);
  s.sys.flushBlock(0, ms::FlushKind::Clwb);
  s.sys.flushBlock(0, ms::FlushKind::Clwb);  // now clean
  EXPECT_EQ(s.sys.totalEvents().flushDirty, 1u);
  EXPECT_EQ(s.sys.totalEvents().flushClean, 1u);
}

TEST(Multicore, CrashLosesAllCores) {
  McSim s(4);
  for (int core = 0; core < 4; ++core) {
    s.store64(core, static_cast<std::uint64_t>(core) * 64, 100 + core);
  }
  s.sys.invalidateAll();
  for (int core = 0; core < 4; ++core) {
    EXPECT_EQ(s.peek64(static_cast<std::uint64_t>(core) * 64), 0u);
  }
}

TEST(Multicore, DrainPersistsEverything) {
  McSim s(2);
  for (int i = 0; i < 16; ++i) {
    s.store64(i % 2, static_cast<std::uint64_t>(i) * 64, 500 + i);
  }
  s.sys.drainAll();
  for (int i = 0; i < 16; ++i) {
    std::uint64_t v = 0;
    s.nvm.read(static_cast<std::uint64_t>(i) * 64,
               {reinterpret_cast<std::uint8_t*>(&v), 8});
    EXPECT_EQ(v, 500u + i);
  }
  EXPECT_EQ(s.sys.inconsistentBytes(0, 16 * 64), 0u);
}

TEST(Multicore, InconsistencyCountsSharedState) {
  McSim s;
  s.store64(0, 0, ~0ULL);
  EXPECT_EQ(s.sys.inconsistentBytes(0, 8), 8u);
  (void)s.load64(1, 0);  // the M copy downgrades; data now in the LLC, dirty
  EXPECT_EQ(s.sys.inconsistentBytes(0, 8), 8u)
      << "a downgrade moves dirt to the LLC; it is still unpersisted";
  s.sys.flushBlock(0, ms::FlushKind::Clwb);
  EXPECT_EQ(s.sys.inconsistentBytes(0, 8), 0u);
}

TEST(Multicore, EvictionsWriteBackThroughLlc) {
  McSim s;
  // Far more blocks than the whole system holds.
  for (int i = 0; i < 128; ++i) {
    s.store64(0, static_cast<std::uint64_t>(i) * 64, 1000 + i);
  }
  EXPECT_GT(s.sys.totalEvents().nvmBlockWrites, 0u);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(s.peek64(static_cast<std::uint64_t>(i) * 64), 1000u + i) << i;
  }
}

TEST(Multicore, SingleCoreDegeneratesToPrivateHierarchy) {
  McSim s(1);
  s.store64(0, 0, 11);
  EXPECT_EQ(s.load64(0, 0), 11u);
  EXPECT_EQ(s.sys.coreEvents(0).invalidationsSent, 0u);
  EXPECT_EQ(s.sys.coreEvents(0).ownershipTransfers, 0u);
}

TEST(Multicore, ConfigValidation) {
  ms::MulticoreConfig bad = McSim::makeConfig(2);
  bad.sharedLlc.sizeBytes = 64;  // smaller than the private cache
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = McSim::makeConfig(0);
  EXPECT_THROW(bad.validate(), std::logic_error);
}

// Property: under a random multi-core workload, every core always reads the
// last written value (coherence), peek always matches, and the protocol
// invariants hold throughout.
TEST(MulticoreProperty, RandomWorkloadIsCoherent) {
  easycrash::Rng rng(2025);
  McSim s(4);
  constexpr std::uint64_t kWords = 256;
  std::vector<std::uint64_t> expected(kWords, 0);
  for (int step = 0; step < 30000; ++step) {
    const int core = static_cast<int>(rng.below(4));
    const std::uint64_t w = rng.below(kWords);
    switch (rng.below(8)) {
      case 0:
      case 1:
      case 2: {
        const std::uint64_t v = rng();
        s.store64(core, w * 8, v);
        expected[w] = v;
        break;
      }
      case 3:
      case 4:
      case 5:
        ASSERT_EQ(s.load64(core, w * 8), expected[w])
            << "core " << core << " word " << w << " step " << step;
        break;
      case 6:
        s.sys.flushBlock(w * 8, rng.below(2) ? ms::FlushKind::Clwb
                                             : ms::FlushKind::Clflushopt);
        break;
      case 7:
        ASSERT_EQ(s.peek64(w * 8), expected[w]);
        break;
    }
    if (step % 4096 == 0) s.sys.checkInvariants();
  }
  s.sys.checkInvariants();
  for (std::uint64_t w = 0; w < kWords; ++w) {
    ASSERT_EQ(s.peek64(w * 8), expected[w]);
  }
}

// Property: after a crash at any point, surviving values are always *some*
// previously-written value of that word (no corruption, no invention).
TEST(MulticoreProperty, CrashSurvivorsAreRealValues) {
  easycrash::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    McSim s(2);
    constexpr std::uint64_t kWords = 64;
    std::vector<std::vector<std::uint64_t>> history(kWords, {0});
    for (int step = 0; step < 2000; ++step) {
      const std::uint64_t w = rng.below(kWords);
      const std::uint64_t v = rng() | 1;  // never zero
      s.store64(static_cast<int>(rng.below(2)), w * 8, v);
      history[w].push_back(v);
      if (rng.below(8) == 0) s.sys.flushBlock(w * 8, ms::FlushKind::Clwb);
    }
    s.sys.invalidateAll();
    for (std::uint64_t w = 0; w < kWords; ++w) {
      const std::uint64_t survivor = s.peek64(w * 8);
      bool known = false;
      for (std::uint64_t v : history[w]) known = known || v == survivor;
      ASSERT_TRUE(known) << "trial " << trial << " word " << w
                         << " surfaced a value never written";
    }
  }
}
