// Tests for campaign reporting: CSV round trip, region-path formatting and
// the human-readable summary.
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "easycrash/apps/registry.hpp"
#include "easycrash/crash/report.hpp"

namespace cr = easycrash::crash;
namespace rt = easycrash::runtime;

namespace {

cr::CampaignResult smallCampaign() {
  cr::CampaignConfig config;
  config.numTests = 12;
  const cr::CampaignRunner runner(easycrash::apps::findBenchmark("is").factory,
                                  config);
  return runner.run();
}

}  // namespace

TEST(RegionPath, Formatting) {
  EXPECT_EQ(cr::formatRegionPath({}), "main");
  EXPECT_EQ(cr::formatRegionPath({0}), "R1");
  EXPECT_EQ(cr::formatRegionPath({1, 4}), "R2>R5");
}

TEST(Report, CsvHasHeaderAndOneRowPerTest) {
  const auto campaign = smallCampaign();
  std::ostringstream os;
  cr::writeCampaignCsv(campaign, os);
  const std::string text = os.str();
  int lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 1 + static_cast<int>(campaign.tests.size()));
  EXPECT_NE(text.find("crash_access"), std::string::npos);
  EXPECT_NE(text.find("rate_bucket_hist"), std::string::npos);
}

TEST(Report, CsvRoundTripsRecords) {
  const auto campaign = smallCampaign();
  std::ostringstream os;
  cr::writeCampaignCsv(campaign, os);
  std::istringstream is(os.str());
  const auto records = cr::readCampaignCsv(is);
  ASSERT_EQ(records.size(), campaign.tests.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].crashAccessIndex, campaign.tests[i].crashAccessIndex);
    EXPECT_EQ(records[i].response, campaign.tests[i].response);
    EXPECT_EQ(records[i].crashIteration, campaign.tests[i].crashIteration);
    EXPECT_EQ(records[i].extraIterations, campaign.tests[i].extraIterations);
    EXPECT_EQ(records[i].inconsistentRate.size(),
              campaign.tests[i].inconsistentRate.size());
  }
}

TEST(Report, CsvRejectsGarbage) {
  std::istringstream empty("");
  EXPECT_THROW((void)cr::readCampaignCsv(empty), std::runtime_error);
  std::istringstream wrongHeader("nope,nope\n");
  EXPECT_THROW((void)cr::readCampaignCsv(wrongHeader), std::runtime_error);
  std::istringstream shortRow(
      "crash_access,iteration,restart_iteration,region,region_path,response,"
      "extra_iterations\n1,2\n");
  EXPECT_THROW((void)cr::readCampaignCsv(shortRow), std::runtime_error);
}

TEST(Report, SummaryMentionsKeyAggregates) {
  const auto campaign = smallCampaign();
  std::ostringstream os;
  cr::writeCampaignSummary(campaign, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("recomputability"), std::string::npos);
  EXPECT_NE(text.find("per-region c_k"), std::string::npos);
  EXPECT_NE(text.find("bucket_hist"), std::string::npos);
}

TEST(Report, CrashRecordsCarryRegionPaths) {
  const auto campaign = smallCampaign();
  for (const auto& test : campaign.tests) {
    ASSERT_FALSE(test.regionPath.empty())
        << "IS crashes always occur inside a first-level region";
    EXPECT_EQ(test.regionPath.back(), test.region);
  }
}
