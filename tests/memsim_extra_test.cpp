// Additional memory-system tests: CacheLevel internals (LRU, extraction,
// eviction), MemEvents accounting, flush-instruction kinds, and hierarchy
// event counters.
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/memsim/cache_level.hpp"
#include "easycrash/memsim/events.hpp"
#include "easycrash/memsim/hierarchy.hpp"

namespace ms = easycrash::memsim;

namespace {

ms::CacheGeometry smallGeometry() { return ms::CacheGeometry{256, 2}; }  // 4 lines

}  // namespace

TEST(CacheLevelTest, InsertAndFind) {
  ms::CacheLevel level(smallGeometry(), 64);
  EXPECT_FALSE(level.find(0).has_value());
  EXPECT_FALSE(level.insert(0).has_value());  // no victim in an empty set
  EXPECT_TRUE(level.find(0).has_value());
  EXPECT_EQ(level.validLines(), 1u);
}

TEST(CacheLevelTest, DoubleInsertRejected) {
  ms::CacheLevel level(smallGeometry(), 64);
  (void)level.insert(0);
  EXPECT_THROW((void)level.insert(0), std::logic_error);
}

TEST(CacheLevelTest, LruVictimIsLeastRecentlyTouched) {
  // 2 sets x 2 ways; blocks 0, 128 map to set 0 (64B blocks, 2 sets).
  ms::CacheLevel level(smallGeometry(), 64);
  (void)level.insert(0);
  (void)level.insert(128);
  // Touch block 0 so 128 becomes LRU.
  level.touch(*level.find(0));
  const auto victim = level.insert(256);  // set 0 again
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->blockAddr, 128u);
}

TEST(CacheLevelTest, EvictedStateCarriesDataAndDirtiness) {
  ms::CacheLevel level(smallGeometry(), 64);
  (void)level.insert(0);
  const auto line = level.find(0);
  level.data(*line)[0] = 0xAB;
  level.setDirty(*line, true);
  (void)level.insert(128);
  const auto victim = level.insert(256);
  ASSERT_TRUE(victim.has_value());
  EXPECT_TRUE(victim->dirty);
  EXPECT_EQ(victim->data[0], 0xAB);
}

TEST(CacheLevelTest, ExtractRemovesWithoutWriteback) {
  ms::CacheLevel level(smallGeometry(), 64);
  (void)level.insert(64);
  const auto line = level.find(64);
  level.setDirty(*line, true);
  const auto extracted = level.extract(64);
  EXPECT_TRUE(extracted.dirty);
  EXPECT_FALSE(level.find(64).has_value());
}

TEST(CacheLevelTest, ExtractMissingThrows) {
  ms::CacheLevel level(smallGeometry(), 64);
  EXPECT_THROW((void)level.extract(64), std::logic_error);
}

TEST(CacheLevelTest, InvalidateAllClearsEverything) {
  ms::CacheLevel level(smallGeometry(), 64);
  for (int i = 0; i < 4; ++i) (void)level.insert(i * 64);
  EXPECT_GT(level.validLines(), 0u);
  level.invalidateAll();
  EXPECT_EQ(level.validLines(), 0u);
  EXPECT_EQ(level.dirtyLines(), 0u);
}

TEST(CacheLevelTest, DirtyLineCount) {
  ms::CacheLevel level(smallGeometry(), 64);
  (void)level.insert(0);
  (void)level.insert(64);
  level.setDirty(*level.find(0), true);
  EXPECT_EQ(level.dirtyLines(), 1u);
  EXPECT_EQ(level.validLines(), 2u);
}

TEST(MemEventsTest, DeltaSubtractsAllCounters) {
  ms::MemEvents earlier;
  earlier.loads = 10;
  earlier.hits[0] = 5;
  earlier.nvmBlockWrites = 2;
  earlier.flushDirty = 1;
  ms::MemEvents later = earlier;
  later.loads = 25;
  later.hits[0] = 12;
  later.nvmBlockWrites = 7;
  later.flushDirty = 3;
  const auto delta = later.delta(earlier);
  EXPECT_EQ(delta.loads, 15u);
  EXPECT_EQ(delta.hits[0], 7u);
  EXPECT_EQ(delta.nvmBlockWrites, 5u);
  EXPECT_EQ(delta.flushDirty, 2u);
}

TEST(MemEventsTest, TotalFlushesSumsClasses) {
  ms::MemEvents e;
  e.flushDirty = 3;
  e.flushClean = 4;
  e.flushNonResident = 5;
  EXPECT_EQ(e.totalFlushes(), 12u);
}

namespace {

struct Sim {
  Sim() : nvm(64), cache(ms::CacheConfig::tiny(), nvm) {}
  ms::NvmStore nvm;
  ms::CacheHierarchy cache;
  void store64(std::uint64_t addr, std::uint64_t v) {
    cache.store(addr, {reinterpret_cast<const std::uint8_t*>(&v), 8});
  }
};

}  // namespace

TEST(FlushKinds, ClflushAlsoInvalidates) {
  Sim s;
  s.store64(0, 9);
  s.cache.flushBlock(0, ms::FlushKind::Clflush);
  const auto before = s.cache.events();
  std::uint64_t v = 0;
  s.cache.load(0, {reinterpret_cast<std::uint8_t*>(&v), 8});
  EXPECT_EQ(v, 9u);
  EXPECT_EQ(s.cache.events().misses[0], before.misses[0] + 1);
}

TEST(FlushKinds, ToStringNames) {
  EXPECT_STREQ(ms::toString(ms::FlushKind::Clflush), "clflush");
  EXPECT_STREQ(ms::toString(ms::FlushKind::Clflushopt), "clflushopt");
  EXPECT_STREQ(ms::toString(ms::FlushKind::Clwb), "clwb");
}

TEST(HierarchyCounters, LoadsAndStoresCounted) {
  Sim s;
  const auto before = s.cache.events();
  s.store64(0, 1);
  std::uint64_t v = 0;
  s.cache.load(0, {reinterpret_cast<std::uint8_t*>(&v), 8});
  EXPECT_EQ(s.cache.events().stores, before.stores + 1);
  EXPECT_EQ(s.cache.events().loads, before.loads + 1);
}

TEST(HierarchyCounters, FillsCountedAsNvmReads) {
  Sim s;
  std::uint64_t v = 0;
  s.cache.load(4096, {reinterpret_cast<std::uint8_t*>(&v), 8});
  EXPECT_EQ(s.cache.events().nvmBlockReads, 1u);
  s.cache.load(4096, {reinterpret_cast<std::uint8_t*>(&v), 8});
  EXPECT_EQ(s.cache.events().nvmBlockReads, 1u) << "second access is a hit";
}

TEST(HierarchyCounters, ResetEventsZeroesCounters) {
  Sim s;
  s.store64(0, 1);
  s.cache.resetEvents();
  EXPECT_EQ(s.cache.events().stores, 0u);
  EXPECT_EQ(s.cache.events().loads, 0u);
}

TEST(HierarchyCounters, FlushInducedWritesAreSubsetOfTotalWrites) {
  Sim s;
  for (int i = 0; i < 128; ++i) s.store64(i * 64ULL, i);
  for (int i = 0; i < 128; i += 2) s.cache.flushBlock(i * 64ULL, ms::FlushKind::Clwb);
  const auto& e = s.cache.events();
  EXPECT_LE(e.flushInducedNvmWrites, e.nvmBlockWrites);
  EXPECT_EQ(e.nvmBlockWrites, s.nvm.blockWrites());
}

TEST(HierarchyInvariants, HoldAfterDrainAndRefill) {
  Sim s;
  for (int i = 0; i < 64; ++i) s.store64(i * 64ULL, i + 1);
  s.cache.drainAll();
  s.cache.checkInvariants();
  for (int i = 0; i < 64; ++i) s.store64(i * 64ULL, i + 100);
  s.cache.checkInvariants();
}

TEST(CacheConfigTest, SetsComputation) {
  const auto tiny = ms::CacheConfig::tiny();
  EXPECT_EQ(tiny.setsAt(0), 2u);   // 256B / 64B / 2-way
  EXPECT_EQ(tiny.setsAt(2), 4u);   // 1KB / 64B / 4-way
  EXPECT_EQ(tiny.llcBytes(), 1024u);
}

TEST(CacheConfigTest, PaperGeometryMatchesXeon) {
  const auto xeon = ms::CacheConfig::xeonGold6126();
  EXPECT_EQ(xeon.levels[0].sizeBytes, 32u * 1024);
  EXPECT_EQ(xeon.llcBytes(), 19u * 1024 * 1024 + 256 * 1024);
}
