// Cross-module integration tests, parameterized over every benchmark:
//
// * boundary-restart determinism: snapshotting all candidates at an
//   iteration boundary (after a full write-back) and restarting from it must
//   reproduce the golden outcome — the foundation the whole EasyCrash
//   recomputation argument rests on;
// * campaign-over-plan smoke: a campaign under a critical-object plan never
//   breaks the golden run and classifies every test.
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/apps/registry.hpp"
#include "easycrash/crash/campaign.hpp"
#include "easycrash/runtime/runtime.hpp"

namespace ec = easycrash;
namespace rt = easycrash::runtime;

namespace {

class IntegrationSuite : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> appNames() {
  std::vector<std::string> names;
  for (const auto& e : ec::apps::allBenchmarks()) names.push_back(e.name);
  return names;
}

}  // namespace

TEST_P(IntegrationSuite, BoundaryRestartReproducesGoldenOutcome) {
  const auto& entry = ec::apps::findBenchmark(GetParam());

  // Golden run, remembering its verification metric and final iteration.
  rt::Runtime golden;
  auto goldenApp = entry.factory();
  const auto goldenResult = rt::Driver::freshRun(*goldenApp, golden);
  ASSERT_TRUE(goldenResult.verification.pass);

  // Partial run up to an iteration boundary in the middle, then force a full
  // write-back (every candidate is then consistent in NVM) and "crash".
  const int boundary = std::max(1, goldenResult.finalIteration / 2);
  rt::Runtime partial;
  auto partialApp = entry.factory();
  partialApp->setup(partial);
  partialApp->initialize(partial);
  (void)rt::Driver::run(*partialApp, partial, 1, boundary);
  partial.hierarchy().drainAll();  // everything persistent at the boundary

  std::map<rt::ObjectId, std::vector<std::uint8_t>> snapshots;
  for (const auto& object : partial.objects()) {
    if (object.candidate) snapshots[object.id] = partial.dumpObjectNvm(object.id);
  }
  partial.powerLoss();

  // Restart: fresh machine, re-initialise, restore, resume.
  rt::Runtime restart;
  auto restartApp = entry.factory();
  restartApp->setup(restart);
  restartApp->initialize(restart);
  for (const auto& [id, bytes] : snapshots) restart.restoreObject(id, bytes);
  const auto resumed = rt::Driver::run(*restartApp, restart, boundary + 1,
                                       2 * goldenResult.finalIteration);

  EXPECT_FALSE(resumed.interrupted) << resumed.interruptReason;
  EXPECT_TRUE(resumed.verification.pass)
      << GetParam() << ": " << resumed.verification.detail;
  EXPECT_EQ(resumed.finalIteration, goldenResult.finalIteration)
      << "a consistent boundary restart must not need extra iterations";
}

TEST_P(IntegrationSuite, CampaignUnderCandidatePlanClassifiesEverything) {
  const auto& entry = ec::apps::findBenchmark(GetParam());
  ec::crash::CampaignConfig config;
  config.numTests = 8;

  // Persist every candidate at the main-loop end.
  rt::Runtime probe;
  auto app = entry.factory();
  app->setup(probe);
  config.plan = rt::PersistencePlan::atMainLoopEnd(probe.candidateObjects());

  const auto campaign = ec::crash::CampaignRunner(entry.factory, config).run();
  EXPECT_EQ(campaign.tests.size(), 8u);
  for (const auto& test : campaign.tests) {
    EXPECT_GE(test.crashIteration, 1);
    EXPECT_LE(test.restartIteration, test.crashIteration);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, IntegrationSuite,
                         ::testing::ValuesIn(appNames()),
                         [](const auto& info) { return info.param; });
