// Paper-shape regression tests: deterministic small campaigns (fixed seed)
// must keep reproducing the qualitative landscape of the paper's Figure 3 /
// Table 1 — the properties every other experiment builds on. If one of
// these fails after a change, the reproduction story changed.
#include <gtest/gtest.h>

#include "easycrash/apps/registry.hpp"
#include "easycrash/crash/campaign.hpp"

namespace ec = easycrash;
namespace cr = easycrash::crash;

namespace {

cr::CampaignResult campaignFor(const std::string& app, int tests = 25) {
  cr::CampaignConfig config;
  config.numTests = tests;
  config.seed = 424242;
  return cr::CampaignRunner(ec::apps::findBenchmark(app).factory, config).run();
}

}  // namespace

TEST(PaperShapes, EpNeverRecomputes) {
  // Table 1: "N/A (the verification fails)" — Monte Carlo accumulators are
  // unrecoverable.
  const auto campaign = campaignFor("ep");
  EXPECT_DOUBLE_EQ(campaign.recomputability(), 0.0);
  EXPECT_DOUBLE_EQ(campaign.successWithExtra(), 0.0);
}

TEST(PaperShapes, LuVerificationFails) {
  // Table 1: LU cannot pass its (reference-trajectory) verification.
  const auto campaign = campaignFor("lu");
  EXPECT_LE(campaign.recomputability(), 0.10);
}

TEST(PaperShapes, BotssparIntrinsicallyFragile) {
  const auto campaign = campaignFor("botsspar");
  EXPECT_LE(campaign.recomputability(), 0.10);
}

TEST(PaperShapes, IsInterruptionDominated) {
  // Table 1: "N/A (segfault)" — the majority response must be S3.
  const auto campaign = campaignFor("is", 40);
  const auto counts = campaign.responseCounts();
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_GT(counts[2], counts[1]);
}

TEST(PaperShapes, SpIsTheResilientEnd) {
  // Figure 3: SP has the strongest intrinsic recomputability (88%).
  const auto campaign = campaignFor("sp");
  EXPECT_GE(campaign.recomputability(), 0.7);
}

TEST(PaperShapes, BtIsStrongToo) {
  const auto campaign = campaignFor("bt");
  EXPECT_GE(campaign.recomputability(), 0.6);
}

TEST(PaperShapes, KmeansFailsViaExtraIterations) {
  // Table 1: kmeans restarts need ~nominal/2 extra iterations, so the strict
  // S1 definition rejects most of its (otherwise successful) recomputations.
  const auto campaign = campaignFor("kmeans", 30);
  const auto counts = campaign.responseCounts();
  EXPECT_GT(counts[1], counts[0]) << "S2 must dominate S1 for kmeans";
  EXPECT_GE(campaign.successWithExtra(), 0.8);
  const double nominal = 36.0;
  EXPECT_NEAR(campaign.averageExtraIterations(), nominal / 2.0, nominal / 3.0);
}

TEST(PaperShapes, CgRecoversWithExtraIterations) {
  // Table 1: CG is the other extra-iterations app (9.1 on average).
  const auto campaign = campaignFor("cg", 30);
  EXPECT_GT(campaign.responseCounts()[1], 0);
  EXPECT_GT(campaign.averageExtraIterations(), 0.0);
  EXPECT_GE(campaign.successWithExtra(), 0.8);
}

TEST(PaperShapes, MgModerateIntrinsicRecomputability) {
  // Figure 3 / 4: MG sits in the low-intermediate band (paper: 27%).
  const auto campaign = campaignFor("mg", 40);
  EXPECT_GT(campaign.recomputability(), 0.02);
  EXPECT_LT(campaign.recomputability(), 0.6);
}

TEST(PaperShapes, FtIsFragileWithoutPersistence) {
  const auto campaign = campaignFor("ft", 30);
  EXPECT_LE(campaign.recomputability(), 0.25);
}

TEST(PaperShapes, PersistingMgUHelpsButRDoesNot) {
  // Figure 4(a) in miniature.
  ec::runtime::Runtime probe;
  auto app = ec::apps::findBenchmark("mg").factory();
  app->setup(probe);
  const auto uId = *probe.findObject("u");
  const auto rId = *probe.findObject("r");

  const auto withPlan = [&](std::vector<ec::runtime::ObjectId> objects) {
    cr::CampaignConfig config;
    config.numTests = 40;
    config.seed = 424242;
    if (!objects.empty()) {
      config.plan = ec::runtime::PersistencePlan::atMainLoopEnd(std::move(objects));
    }
    return cr::CampaignRunner(ec::apps::findBenchmark("mg").factory, config)
        .run()
        .recomputability();
  };

  const double none = withPlan({});
  const double withU = withPlan({uId});
  const double withR = withPlan({rId});
  EXPECT_GT(withU, none + 0.03) << "persisting u must clearly help";
  EXPECT_NEAR(withR, none, 0.08) << "persisting r must barely matter";
}

TEST(PaperShapes, AverageIntrinsicRecomputabilityNearPaper) {
  // Paper: 28% average across the suite. Allow a generous band; a drift out
  // of it means the landscape changed.
  double sum = 0.0;
  int count = 0;
  for (const auto& entry : ec::apps::allBenchmarks()) {
    sum += campaignFor(entry.name, 20).recomputability();
    ++count;
  }
  const double average = sum / count;
  EXPECT_GT(average, 0.15);
  EXPECT_LT(average, 0.45);
}
