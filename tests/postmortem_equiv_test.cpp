// Differential test of the post-mortem scan fast path (dirty-block index +
// vectorized compare kernel) against its scalar references.
//
// The contract is bit-identity: inconsistentBytes and peek must return the
// same answers with the fast path on, with it off (the probe-every-level
// walk), and against an oracle computed from first principles — the
// architecturally-current value (peek) diffed byte-by-byte against the NVM
// image, which is the paper's definition of inconsistency. The compare
// kernels themselves (portable word-at-a-time and AVX2) are additionally
// differentially tested against a naive byte loop on awkward sizes, and the
// incrementally-maintained dirty-block index is checked against a full
// forEachValid walk of the levels after every mutation burst.
#include <cstdint>
#include <cstring>
#include <span>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/common/rng.hpp"
#include "easycrash/memsim/hierarchy.hpp"
#include "easycrash/memsim/multicore.hpp"
#include "easycrash/memsim/scan.hpp"

namespace ms = easycrash::memsim;
namespace scan = easycrash::memsim::scan;

namespace {

// ---------------------------------------------------------------------------
// Compare-kernel unit tests.
// ---------------------------------------------------------------------------

std::uint64_t naiveDiff(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t n) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += a[i] != b[i] ? 1 : 0;
  return count;
}

TEST(ScanKernel, PortableMatchesNaiveOnAwkwardSizes) {
  easycrash::Rng rng(0x5CA11);
  for (std::size_t n = 0; n <= 130; ++n) {
    std::vector<std::uint8_t> a(n), b(n);
    for (auto& byte : a) byte = static_cast<std::uint8_t>(rng.below(256));
    // Sparse diffs: copy then corrupt a few bytes, covering the all-equal,
    // one-diff and dense cases.
    b = a;
    const std::uint64_t diffs = n == 0 ? 0 : rng.below(n + 1);
    for (std::uint64_t d = 0; d < diffs; ++d) {
      b[rng.below(n)] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    EXPECT_EQ(scan::countDiffBytesPortable(a.data(), b.data(), n),
              naiveDiff(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(ScanKernel, Avx2MatchesPortable) {
  if (!scan::avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  easycrash::Rng rng(0xA5A5);
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{31},
                        std::size_t{32}, std::size_t{33}, std::size_t{63},
                        std::size_t{64}, std::size_t{65}, std::size_t{100},
                        std::size_t{256}, std::size_t{1000}}) {
    for (int round = 0; round < 16; ++round) {
      std::vector<std::uint8_t> a(n), b(n);
      for (auto& byte : a) byte = static_cast<std::uint8_t>(rng.below(256));
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.below(256));
      EXPECT_EQ(scan::countDiffBytesAvx2(a.data(), b.data(), n),
                scan::countDiffBytesPortable(a.data(), b.data(), n))
          << "n=" << n;
    }
  }
}

TEST(ScanKernel, ForcedKernelsAgreeThroughDispatch) {
  std::vector<std::uint8_t> a(192), b(192);
  easycrash::Rng rng(0xD15);
  for (auto& byte : a) byte = static_cast<std::uint8_t>(rng.below(256));
  b = a;
  b[0] ^= 0x80;
  b[100] ^= 0x01;
  b[191] ^= 0xFF;
  scan::forceKernel(scan::Kernel::Portable);
  const std::uint64_t viaPortable = scan::countDiffBytes(a.data(), b.data(), a.size());
  EXPECT_EQ(scan::activeKernel(), scan::Kernel::Portable);
  scan::forceKernel(scan::Kernel::Avx2);  // no-op when AVX2 is unavailable
  const std::uint64_t viaForced = scan::countDiffBytes(a.data(), b.data(), a.size());
  scan::resetKernel();
  EXPECT_EQ(viaPortable, 3u);
  EXPECT_EQ(viaForced, 3u);
  // The memcmp prefilter must short-circuit the all-equal case.
  EXPECT_EQ(scan::countDiffBytes(a.data(), a.data(), a.size()), 0u);
  EXPECT_EQ(scan::countDiffBytes(a.data(), b.data(), 0), 0u);
}

// ---------------------------------------------------------------------------
// Hierarchy differential: fast path vs scalar walk vs first-principles oracle.
// ---------------------------------------------------------------------------

/// Distinct dirty-anywhere blocks collected by brute force from the levels.
std::unordered_set<std::uint64_t> dirtyBlocksBruteForce(const ms::CacheHierarchy& h) {
  std::unordered_set<std::uint64_t> dirty;
  for (std::size_t i = 0; i < h.levelCount(); ++i) {
    h.level(i).forEachValid(
        [&](std::uint64_t blockAddr, bool isDirty, std::span<const std::uint8_t>) {
          if (isDirty) dirty.insert(blockAddr);
        });
  }
  return dirty;
}

void expectIndexCoherent(const ms::CacheHierarchy& h, std::uint64_t footprint) {
  const auto expected = dirtyBlocksBruteForce(h);
  ASSERT_EQ(h.dirtyIndex().size(), expected.size());
  const std::uint32_t blockSize = h.config().blockSize;
  for (std::uint64_t base = 0; base < footprint; base += blockSize) {
    EXPECT_EQ(h.dirtyIndex().contains(base), expected.count(base) != 0)
        << "block " << base;
  }
}

/// inconsistentBytes from first principles: architectural value vs NVM image.
std::uint64_t oracleInconsistent(const ms::CacheHierarchy& h, const ms::NvmStore& nvm,
                                 std::uint64_t addr, std::uint64_t size) {
  std::vector<std::uint8_t> current(size), image(size);
  h.peek(addr, current);
  nvm.read(addr, image);
  return naiveDiff(current.data(), image.data(), size);
}

void runHierarchyDifferential(const ms::CacheConfig& config, std::uint64_t seed) {
  ms::NvmStore nvm(config.blockSize);
  ms::CacheHierarchy hier(config, nvm);
  constexpr std::uint64_t kFootprint = 8 * 1024;
  easycrash::Rng rng(seed);

  for (int op = 0; op < 100000; ++op) {
    const std::uint64_t kind = rng.below(100);
    if (kind < 45) {
      const std::uint64_t size = rng.between(1, 160);
      const std::uint64_t addr = rng.below(kFootprint - size);
      std::vector<std::uint8_t> buf(size);
      for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.below(256));
      hier.store(addr, buf);
    } else if (kind < 70) {
      const std::uint64_t size = rng.between(1, 160);
      const std::uint64_t addr = rng.below(kFootprint - size);
      std::vector<std::uint8_t> buf(size);
      hier.load(addr, buf);
    } else if (kind < 80) {
      hier.flushBlock(rng.below(kFootprint), static_cast<ms::FlushKind>(rng.below(3)));
    } else if (kind < 88) {
      const std::uint64_t size = rng.between(1, 512);
      const std::uint64_t addr = rng.below(kFootprint - size);
      hier.flushRange(addr, size, static_cast<ms::FlushKind>(rng.below(3)));
    } else if (kind < 90) {
      hier.drainAll();
    } else if (kind < 91) {
      hier.invalidateAll();
    } else if (kind < 96) {
      // Post-mortem probe: fast vs scalar vs oracle on a random sub-range.
      const std::uint64_t size = rng.between(1, 2048);
      const std::uint64_t addr = rng.below(kFootprint - size);
      hier.setScanFastPath(true);
      const std::uint64_t fast = hier.inconsistentBytes(addr, size);
      hier.setScanFastPath(false);
      const std::uint64_t scalar = hier.inconsistentBytes(addr, size);
      hier.setScanFastPath(true);
      ASSERT_EQ(fast, scalar) << "op " << op;
      ASSERT_EQ(fast, oracleInconsistent(hier, nvm, addr, size)) << "op " << op;
    } else {
      // Snapshot probe: peek fast vs scalar, byte-identical.
      const std::uint64_t size = rng.between(1, 1024);
      const std::uint64_t addr = rng.below(kFootprint - size);
      std::vector<std::uint8_t> fast(size), scalar(size);
      hier.setScanFastPath(true);
      hier.peek(addr, fast);
      hier.setScanFastPath(false);
      hier.peek(addr, scalar);
      hier.setScanFastPath(true);
      ASSERT_EQ(fast, scalar) << "op " << op;
    }
    if (op % 5000 == 0) expectIndexCoherent(hier, kFootprint);
  }
  expectIndexCoherent(hier, kFootprint);
  // Whole-footprint agreement at the end, under both forced kernels.
  for (const scan::Kernel kernel : {scan::Kernel::Portable, scan::Kernel::Avx2}) {
    scan::forceKernel(kernel);
    hier.setScanFastPath(true);
    const std::uint64_t fast = hier.inconsistentBytes(0, kFootprint);
    hier.setScanFastPath(false);
    const std::uint64_t scalar = hier.inconsistentBytes(0, kFootprint);
    hier.setScanFastPath(true);
    EXPECT_EQ(fast, scalar);
    EXPECT_EQ(fast, oracleInconsistent(hier, nvm, 0, kFootprint));
  }
  scan::resetKernel();
}

TEST(PostmortemEquiv, TinyGeometry) {
  runHierarchyDifferential(ms::CacheConfig::tiny(), 0xEC5EED01);
}

TEST(PostmortemEquiv, NonPowerOfTwoGeometry) {
  ms::CacheConfig config;
  config.blockSize = 64;
  config.levels = {{6ULL * 64, 2}, {10ULL * 64, 2}, {28ULL * 64, 4}};
  runHierarchyDifferential(config, 0xEC5EED02);
}

// After a crash (invalidateAll) the index must be empty and the whole
// footprint consistent — the degenerate case the skip logic leans on.
TEST(PostmortemEquiv, EmptyIndexAfterPowerLoss) {
  ms::NvmStore nvm(64);
  ms::CacheHierarchy hier(ms::CacheConfig::tiny(), nvm);
  easycrash::Rng rng(0xDEAD);
  std::vector<std::uint8_t> buf(64);
  for (int i = 0; i < 200; ++i) {
    for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.below(256));
    hier.store(rng.below(4096 - buf.size()), buf);
  }
  EXPECT_GT(hier.dirtyIndex().size(), 0u);
  hier.invalidateAll();
  EXPECT_EQ(hier.dirtyIndex().size(), 0u);
  EXPECT_EQ(hier.inconsistentBytes(0, 4096), 0u);
  const auto& ev = hier.events();
  EXPECT_EQ(ev.postmortemBlocksCompared, 0u);
  EXPECT_EQ(ev.postmortemBlocksSkipped, 4096u / 64u);
}

// The postmortem_* counters are fast-path diagnostics: the scalar walk must
// leave them untouched, and compared + skipped must tile the scanned range.
TEST(PostmortemEquiv, CountersOnlyOnFastPath) {
  ms::NvmStore nvm(64);
  ms::CacheHierarchy hier(ms::CacheConfig::tiny(), nvm);
  std::vector<std::uint8_t> buf(64, 0xAB);
  hier.store(0, buf);
  hier.store(640, buf);

  hier.setScanFastPath(false);
  (void)hier.inconsistentBytes(0, 4096);
  EXPECT_EQ(hier.events().postmortemBlocksCompared, 0u);
  EXPECT_EQ(hier.events().postmortemBlocksSkipped, 0u);
  EXPECT_EQ(hier.events().postmortemBytesCompared, 0u);

  hier.setScanFastPath(true);
  (void)hier.inconsistentBytes(0, 4096);
  EXPECT_EQ(hier.events().postmortemBlocksCompared, 2u);
  EXPECT_EQ(hier.events().postmortemBlocksSkipped, 4096u / 64u - 2u);
  EXPECT_EQ(hier.events().postmortemBytesCompared, 128u);
}

// ---------------------------------------------------------------------------
// Multicore differential: MESI hierarchy, same three-way agreement.
// ---------------------------------------------------------------------------

std::uint64_t oracleInconsistentMc(const ms::MulticoreSystem& sys,
                                   const ms::NvmStore& nvm, std::uint64_t addr,
                                   std::uint64_t size) {
  std::vector<std::uint8_t> current(size), image(size);
  sys.peek(addr, current);
  nvm.read(addr, image);
  return naiveDiff(current.data(), image.data(), size);
}

TEST(PostmortemEquiv, Multicore) {
  ms::MulticoreConfig config;
  config.cores = 3;
  config.privateCache = {4ULL * 64, 2};
  config.sharedLlc = {16ULL * 64, 4};
  ms::NvmStore nvm(config.blockSize);
  ms::MulticoreSystem sys(config, nvm);
  constexpr std::uint64_t kFootprint = 4 * 1024;
  easycrash::Rng rng(0xC04E5);

  for (int op = 0; op < 60000; ++op) {
    const int core = static_cast<int>(rng.below(3));
    const std::uint64_t kind = rng.below(100);
    if (kind < 45) {
      const std::uint64_t size = rng.between(1, 96);
      const std::uint64_t addr = rng.below(kFootprint - size);
      std::vector<std::uint8_t> buf(size);
      for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.below(256));
      sys.store(core, addr, buf);
    } else if (kind < 70) {
      const std::uint64_t size = rng.between(1, 96);
      const std::uint64_t addr = rng.below(kFootprint - size);
      std::vector<std::uint8_t> buf(size);
      sys.load(core, addr, buf);
    } else if (kind < 80) {
      sys.flushBlock(rng.below(kFootprint), static_cast<ms::FlushKind>(rng.below(3)));
    } else if (kind < 86) {
      const std::uint64_t size = rng.between(1, 512);
      const std::uint64_t addr = rng.below(kFootprint - size);
      sys.flushRange(addr, size, static_cast<ms::FlushKind>(rng.below(3)));
    } else if (kind < 88) {
      sys.drainAll();
    } else if (kind < 89) {
      sys.invalidateAll();
      EXPECT_EQ(sys.dirtyIndex().size(), 0u);
    } else if (kind < 95) {
      const std::uint64_t size = rng.between(1, 1024);
      const std::uint64_t addr = rng.below(kFootprint - size);
      sys.setScanFastPath(true);
      const std::uint64_t fast = sys.inconsistentBytes(addr, size);
      sys.setScanFastPath(false);
      const std::uint64_t scalar = sys.inconsistentBytes(addr, size);
      sys.setScanFastPath(true);
      ASSERT_EQ(fast, scalar) << "op " << op;
      ASSERT_EQ(fast, oracleInconsistentMc(sys, nvm, addr, size)) << "op " << op;
    } else {
      const std::uint64_t size = rng.between(1, 512);
      const std::uint64_t addr = rng.below(kFootprint - size);
      std::vector<std::uint8_t> fast(size), scalar(size);
      sys.setScanFastPath(true);
      sys.peek(addr, fast);
      sys.setScanFastPath(false);
      sys.peek(addr, scalar);
      sys.setScanFastPath(true);
      ASSERT_EQ(fast, scalar) << "op " << op;
    }
    if (op % 10000 == 0) sys.checkInvariants();
  }
  sys.setScanFastPath(true);
  const std::uint64_t fast = sys.inconsistentBytes(0, kFootprint);
  sys.setScanFastPath(false);
  EXPECT_EQ(fast, sys.inconsistentBytes(0, kFootprint));
}

}  // namespace
