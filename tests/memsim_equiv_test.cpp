// Differential test of the optimised memory-system simulator against a
// naive reference model.
//
// The hot-path rework of CacheLevel/CacheHierarchy (shift/mask set indexing,
// MRU fast path, allocation-free eviction, single-probe flushes, counter
// caching) must be *observably identical* to the straightforward
// implementation: same MemEvents, same NVM image, same architecturally
// current values, same inconsistency measurements. This file re-implements
// the simulator in deliberately naive style — division and modulo, per-set
// linear probes, fresh allocations per operation — and drives both engines
// through ~100k seeded random operations, comparing after every step.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/common/rng.hpp"
#include "easycrash/memsim/hierarchy.hpp"
#include "easycrash/memsim/multicore.hpp"

namespace ms = easycrash::memsim;

namespace {

// ---------------------------------------------------------------------------
// Reference model: naive value-tracking write-back hierarchy.
// ---------------------------------------------------------------------------

struct RefNvm {
  explicit RefNvm(std::uint32_t blockSize) : blockSize(blockSize) {}

  std::uint32_t blockSize;
  std::vector<std::uint8_t> image;
  std::uint64_t blockWrites = 0;

  void read(std::uint64_t addr, std::span<std::uint8_t> dst) const {
    for (std::uint64_t i = 0; i < dst.size(); ++i) {
      const std::uint64_t a = addr + i;
      dst[i] = a < image.size() ? image[a] : 0;
    }
  }

  void writeBlock(std::uint64_t addr, std::span<const std::uint8_t> src) {
    if (addr + blockSize > image.size()) image.resize(addr + blockSize, 0);
    std::copy(src.begin(), src.end(), image.begin() + static_cast<std::ptrdiff_t>(addr));
    ++blockWrites;
  }
};

struct RefLine {
  bool valid = false;
  bool dirty = false;
  std::uint64_t blockAddr = 0;
  std::uint64_t lastUse = 0;
  std::vector<std::uint8_t> data;
};

struct RefEvicted {
  std::uint64_t blockAddr = 0;
  bool dirty = false;
  std::vector<std::uint8_t> data;
};

/// One set-associative level: division/modulo indexing, linear probes.
struct RefLevel {
  RefLevel(const ms::CacheGeometry& g, std::uint32_t blockSize)
      : blockSize(blockSize), assoc(g.associativity) {
    const std::uint64_t numLines = g.sizeBytes / blockSize;
    sets = numLines / assoc;
    lines.resize(numLines);
    for (auto& l : lines) l.data.assign(blockSize, 0);
  }

  std::uint32_t blockSize;
  std::uint32_t assoc;
  std::uint64_t sets;
  std::uint64_t tick = 0;
  std::vector<RefLine> lines;

  [[nodiscard]] std::uint64_t setOf(std::uint64_t blockAddr) const {
    return (blockAddr / blockSize) % sets;
  }

  [[nodiscard]] std::optional<std::uint32_t> find(std::uint64_t blockAddr) const {
    const std::uint64_t base = setOf(blockAddr) * assoc;
    for (std::uint32_t way = 0; way < assoc; ++way) {
      const RefLine& l = lines[base + way];
      if (l.valid && l.blockAddr == blockAddr) {
        return static_cast<std::uint32_t>(base + way);
      }
    }
    return std::nullopt;
  }

  void touch(std::uint32_t line) { lines[line].lastUse = ++tick; }

  /// Insert a missing block; returns the victim if a valid line was evicted.
  std::optional<RefEvicted> insert(std::uint64_t blockAddr, std::uint32_t& outLine) {
    const std::uint64_t base = setOf(blockAddr) * assoc;
    std::uint32_t victimWay = 0;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    bool foundInvalid = false;
    for (std::uint32_t way = 0; way < assoc; ++way) {
      const RefLine& l = lines[base + way];
      if (!l.valid) {
        victimWay = way;
        foundInvalid = true;
        break;
      }
      if (l.lastUse < oldest) {
        oldest = l.lastUse;
        victimWay = way;
      }
    }
    const auto idx = static_cast<std::uint32_t>(base + victimWay);
    RefLine& l = lines[idx];
    std::optional<RefEvicted> victim;
    if (!foundInvalid) {
      victim = RefEvicted{l.blockAddr, l.dirty, l.data};
    }
    l.valid = true;
    l.dirty = false;
    l.blockAddr = blockAddr;
    l.lastUse = ++tick;
    std::fill(l.data.begin(), l.data.end(), 0);
    outLine = idx;
    return victim;
  }

  RefEvicted extract(std::uint64_t blockAddr) {
    const auto idx = find(blockAddr);
    EXPECT_TRUE(idx.has_value());
    RefLine& l = lines[*idx];
    RefEvicted out{l.blockAddr, l.dirty, l.data};
    l.valid = false;
    l.dirty = false;
    return out;
  }
};

struct RefHierarchy {
  RefHierarchy(const ms::CacheConfig& config, RefNvm& nvm)
      : config(config), nvm(nvm) {
    for (const auto& g : config.levels) levels.emplace_back(g, config.blockSize);
  }

  ms::CacheConfig config;
  RefNvm& nvm;
  std::vector<RefLevel> levels;
  ms::MemEvents events;

  [[nodiscard]] std::uint64_t blockBase(std::uint64_t addr) const {
    return addr / config.blockSize * config.blockSize;
  }

  void handleEviction(std::size_t level, RefEvicted victim) {
    for (std::size_t upper = level; upper-- > 0;) {
      if (levels[upper].find(victim.blockAddr)) {
        RefEvicted upperCopy = levels[upper].extract(victim.blockAddr);
        if (upperCopy.dirty) {
          victim.data = upperCopy.data;
          victim.dirty = true;
        }
      }
    }
    if (level + 1 < levels.size()) {
      const auto below = levels[level + 1].find(victim.blockAddr);
      ASSERT_TRUE(below.has_value());
      if (victim.dirty) {
        levels[level + 1].lines[*below].data = victim.data;
        levels[level + 1].lines[*below].dirty = true;
      }
    } else if (victim.dirty) {
      nvm.writeBlock(victim.blockAddr, victim.data);
      ++events.nvmBlockWrites;
    }
  }

  void insertAt(std::size_t level, std::uint64_t blockAddr,
                const std::vector<std::uint8_t>& data) {
    std::uint32_t line = 0;
    auto victim = levels[level].insert(blockAddr, line);
    if (victim) handleEviction(level, std::move(*victim));
    levels[level].lines[line].data = data;
  }

  std::uint32_t ensureInL1(std::uint64_t blockAddr) {
    if (const auto l1 = levels[0].find(blockAddr)) {
      ++events.hits[0];
      levels[0].touch(*l1);
      return *l1;
    }
    ++events.misses[0];
    std::vector<std::uint8_t> block(config.blockSize, 0);
    std::size_t source = levels.size();
    for (std::size_t i = 1; i < levels.size(); ++i) {
      if (const auto line = levels[i].find(blockAddr)) {
        ++events.hits[i];
        levels[i].touch(*line);
        block = levels[i].lines[*line].data;
        source = i;
        break;
      }
      ++events.misses[i];
    }
    if (source == levels.size()) {
      nvm.read(blockAddr, block);
      ++events.nvmBlockReads;
    }
    for (std::size_t i = source; i-- > 0;) {
      insertAt(i, blockAddr, block);
    }
    const auto l1 = levels[0].find(blockAddr);
    EXPECT_TRUE(l1.has_value());
    return *l1;
  }

  void load(std::uint64_t addr, std::span<std::uint8_t> dst) {
    std::uint64_t offset = 0;
    while (offset < dst.size()) {
      const std::uint64_t a = addr + offset;
      const std::uint64_t base = blockBase(a);
      const std::uint64_t off = a - base;
      const std::uint64_t chunk =
          std::min<std::uint64_t>(config.blockSize - off, dst.size() - offset);
      const std::uint32_t line = ensureInL1(base);
      std::memcpy(dst.data() + offset, levels[0].lines[line].data.data() + off, chunk);
      ++events.loads;
      offset += chunk;
    }
  }

  void store(std::uint64_t addr, std::span<const std::uint8_t> src) {
    std::uint64_t offset = 0;
    while (offset < src.size()) {
      const std::uint64_t a = addr + offset;
      const std::uint64_t base = blockBase(a);
      const std::uint64_t off = a - base;
      const std::uint64_t chunk =
          std::min<std::uint64_t>(config.blockSize - off, src.size() - offset);
      const std::uint32_t line = ensureInL1(base);
      std::memcpy(levels[0].lines[line].data.data() + off, src.data() + offset, chunk);
      levels[0].lines[line].dirty = true;
      ++events.stores;
      offset += chunk;
    }
  }

  void flushBlock(std::uint64_t addr, ms::FlushKind kind) {
    const std::uint64_t base = blockBase(addr);
    std::size_t lowest = levels.size();
    bool dirtyAnywhere = false;
    for (std::size_t i = 0; i < levels.size(); ++i) {
      if (const auto line = levels[i].find(base)) {
        if (lowest == levels.size()) lowest = i;
        dirtyAnywhere = dirtyAnywhere || levels[i].lines[*line].dirty;
      }
    }
    if (lowest == levels.size()) {
      ++events.flushNonResident;
      return;
    }
    if (dirtyAnywhere) {
      const std::vector<std::uint8_t> freshest =
          levels[lowest].lines[*levels[lowest].find(base)].data;
      nvm.writeBlock(base, freshest);
      ++events.nvmBlockWrites;
      ++events.flushInducedNvmWrites;
      ++events.flushDirty;
      for (std::size_t i = lowest; i < levels.size(); ++i) {
        if (const auto line = levels[i].find(base)) {
          levels[i].lines[*line].data = freshest;
          levels[i].lines[*line].dirty = false;
        }
      }
    } else {
      ++events.flushClean;
    }
    if (kind != ms::FlushKind::Clwb) {
      for (auto& level : levels) {
        if (const auto line = level.find(base)) {
          level.lines[*line].valid = false;
          level.lines[*line].dirty = false;
        }
      }
    }
  }

  void flushRange(std::uint64_t addr, std::uint64_t size, ms::FlushKind kind) {
    if (size == 0) return;
    const std::uint64_t first = blockBase(addr);
    const std::uint64_t last = blockBase(addr + size - 1);
    for (std::uint64_t b = first; b <= last; b += config.blockSize) {
      flushBlock(b, kind);
    }
  }

  void peek(std::uint64_t addr, std::span<std::uint8_t> dst) const {
    for (std::uint64_t i = 0; i < dst.size(); ++i) {
      const std::uint64_t a = addr + i;
      const std::uint64_t base = a / config.blockSize * config.blockSize;
      bool found = false;
      for (const auto& level : levels) {
        if (const auto line = level.find(base)) {
          dst[i] = level.lines[*line].data[a - base];
          found = true;
          break;
        }
      }
      if (!found) nvm.read(a, {&dst[i], 1});
    }
  }

  [[nodiscard]] std::uint64_t inconsistentBytes(std::uint64_t addr,
                                                std::uint64_t size) const {
    if (size == 0) return 0;
    std::uint64_t count = 0;
    const std::uint64_t first = addr / config.blockSize * config.blockSize;
    const std::uint64_t last = (addr + size - 1) / config.blockSize * config.blockSize;
    for (std::uint64_t base = first; base <= last; base += config.blockSize) {
      bool dirtyAnywhere = false;
      std::size_t lowest = levels.size();
      for (std::size_t i = 0; i < levels.size(); ++i) {
        if (const auto line = levels[i].find(base)) {
          if (lowest == levels.size()) lowest = i;
          dirtyAnywhere = dirtyAnywhere || levels[i].lines[*line].dirty;
        }
      }
      if (!dirtyAnywhere) continue;
      const auto& cached = levels[lowest].lines[*levels[lowest].find(base)].data;
      std::vector<std::uint8_t> nvmBlock(config.blockSize);
      nvm.read(base, nvmBlock);
      const std::uint64_t lo = std::max(base, addr);
      const std::uint64_t hi = std::min(base + config.blockSize, addr + size);
      for (std::uint64_t b = lo; b < hi; ++b) {
        if (cached[b - base] != nvmBlock[b - base]) ++count;
      }
    }
    return count;
  }

  void drainAll() {
    for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
      for (auto& line : levels[i].lines) {
        if (!line.valid || !line.dirty) continue;
        const auto below = levels[i + 1].find(line.blockAddr);
        ASSERT_TRUE(below.has_value());
        levels[i + 1].lines[*below].data = line.data;
        levels[i + 1].lines[*below].dirty = true;
        line.dirty = false;
      }
    }
    for (auto& line : levels.back().lines) {
      if (!line.valid || !line.dirty) continue;
      nvm.writeBlock(line.blockAddr, line.data);
      ++events.nvmBlockWrites;
      line.dirty = false;
    }
  }

  void invalidateAll() {
    for (auto& level : levels) {
      for (auto& line : level.lines) {
        line.valid = false;
        line.dirty = false;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Differential driver.
// ---------------------------------------------------------------------------

void expectSameEvents(const ms::MemEvents& a, const ms::MemEvents& b,
                      std::uint64_t step) {
  ASSERT_EQ(a.loads, b.loads) << "step " << step;
  ASSERT_EQ(a.stores, b.stores) << "step " << step;
  for (std::size_t i = 0; i < ms::kMaxLevels; ++i) {
    ASSERT_EQ(a.hits[i], b.hits[i]) << "level " << i << " step " << step;
    ASSERT_EQ(a.misses[i], b.misses[i]) << "level " << i << " step " << step;
  }
  ASSERT_EQ(a.nvmBlockReads, b.nvmBlockReads) << "step " << step;
  ASSERT_EQ(a.nvmBlockWrites, b.nvmBlockWrites) << "step " << step;
  ASSERT_EQ(a.flushDirty, b.flushDirty) << "step " << step;
  ASSERT_EQ(a.flushClean, b.flushClean) << "step " << step;
  ASSERT_EQ(a.flushNonResident, b.flushNonResident) << "step " << step;
  ASSERT_EQ(a.flushInducedNvmWrites, b.flushInducedNvmWrites) << "step " << step;
}

void expectSameNvm(const ms::NvmStore& real, const RefNvm& ref, std::uint64_t step) {
  ASSERT_EQ(real.blockWrites(), ref.blockWrites) << "step " << step;
  // Images may differ in materialised length; compare over the longer span
  // (unbacked bytes read as zero in both models).
  const std::uint64_t span = std::max<std::uint64_t>(real.imageBytes(), ref.image.size());
  std::vector<std::uint8_t> a(span), b(span);
  real.read(0, a);
  ref.read(0, b);
  ASSERT_EQ(a, b) << "NVM image differs at step " << step;
}

TEST(MemsimEquivalence, RandomOpsMatchNaiveReference) {
  const ms::CacheConfig config = ms::CacheConfig::tiny();
  ms::NvmStore nvm(config.blockSize);
  ms::CacheHierarchy real(config, nvm);
  RefNvm refNvm(config.blockSize);
  RefHierarchy ref(config, refNvm);

  easycrash::Rng rng(0xEC5EED);
  // Footprint of 8 KiB >> the 1 KiB tiny LLC: plenty of natural evictions.
  constexpr std::uint64_t kFootprint = 8 * 1024;
  constexpr std::uint64_t kOps = 100000;
  std::vector<std::uint8_t> buf, refBuf;

  for (std::uint64_t step = 0; step < kOps; ++step) {
    const std::uint64_t op = rng.below(100);
    if (op < 40) {  // store
      const std::uint64_t size = rng.between(1, 160);
      const std::uint64_t addr = rng.below(kFootprint - size);
      buf.resize(size);
      for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.below(256));
      real.store(addr, buf);
      ref.store(addr, buf);
    } else if (op < 70) {  // load, values must agree
      const std::uint64_t size = rng.between(1, 160);
      const std::uint64_t addr = rng.below(kFootprint - size);
      buf.assign(size, 0xAA);
      refBuf.assign(size, 0x55);
      real.load(addr, buf);
      ref.load(addr, refBuf);
      ASSERT_EQ(buf, refBuf) << "loaded values differ at step " << step;
    } else if (op < 85) {  // flush one block, all three instruction classes
      const std::uint64_t addr = rng.below(kFootprint);
      const auto kind = static_cast<ms::FlushKind>(rng.below(3));
      real.flushBlock(addr, kind);
      ref.flushBlock(addr, kind);
    } else if (op < 92) {  // flush a range
      const std::uint64_t size = rng.between(1, 512);
      const std::uint64_t addr = rng.below(kFootprint - size);
      const auto kind = static_cast<ms::FlushKind>(rng.below(3));
      real.flushRange(addr, size, kind);
      ref.flushRange(addr, size, kind);
    } else if (op < 96) {  // peek + inconsistency, both must agree
      const std::uint64_t size = rng.between(1, 256);
      const std::uint64_t addr = rng.below(kFootprint - size);
      buf.assign(size, 0xAA);
      refBuf.assign(size, 0x55);
      real.peek(addr, buf);
      ref.peek(addr, refBuf);
      ASSERT_EQ(buf, refBuf) << "peeked values differ at step " << step;
      ASSERT_EQ(real.inconsistentBytes(addr, size), ref.inconsistentBytes(addr, size))
          << "inconsistency differs at step " << step;
    } else if (op < 98) {  // checkpoint drain
      real.drainAll();
      ref.drainAll();
    } else if (op < 99) {  // power loss
      real.invalidateAll();
      ref.invalidateAll();
    } else {  // structural self-check of the optimised engine
      real.checkInvariants();
    }

    expectSameEvents(real.events(), ref.events, step);
    if (step % 1024 == 0 || step + 1 == kOps) {
      expectSameNvm(nvm, refNvm, step);
      ASSERT_EQ(real.inconsistentBytes(0, kFootprint),
                ref.inconsistentBytes(0, kFootprint))
          << "whole-footprint inconsistency differs at step " << step;
    }
  }

  // Final settlement: drain everything and require identical NVM images.
  real.drainAll();
  ref.drainAll();
  expectSameEvents(real.events(), ref.events, kOps);
  expectSameNvm(nvm, refNvm, kOps);
  EXPECT_EQ(real.inconsistentBytes(0, kFootprint), 0u);
}

// The same differential driver over a non-power-of-two set count exercises
// the modulo fallback of the optimised set indexing (the paper's Xeon Gold
// 6126 L3 — 19.25 MB / 11-way — has 28672 sets, so this path is load-bearing
// for the flagship configuration).
TEST(MemsimEquivalence, NonPowerOfTwoSetsMatchNaiveReference) {
  ms::CacheConfig config;
  config.name = "np2";
  config.blockSize = 64;
  // 3 sets in L1 (6 lines / 2-way), 5 sets in L2, 7 sets in L3.
  config.levels = {{6ULL * 64, 2}, {10ULL * 64, 2}, {28ULL * 64, 4}};
  config.validate();

  ms::NvmStore nvm(config.blockSize);
  ms::CacheHierarchy real(config, nvm);
  RefNvm refNvm(config.blockSize);
  RefHierarchy ref(config, refNvm);

  easycrash::Rng rng(0xC0FFEE);
  constexpr std::uint64_t kFootprint = 4 * 1024;
  constexpr std::uint64_t kOps = 20000;
  std::vector<std::uint8_t> buf, refBuf;

  for (std::uint64_t step = 0; step < kOps; ++step) {
    const std::uint64_t op = rng.below(10);
    const std::uint64_t size = rng.between(1, 96);
    const std::uint64_t addr = rng.below(kFootprint - size);
    if (op < 4) {
      buf.resize(size);
      for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.below(256));
      real.store(addr, buf);
      ref.store(addr, buf);
    } else if (op < 8) {
      buf.assign(size, 0xAA);
      refBuf.assign(size, 0x55);
      real.load(addr, buf);
      ref.load(addr, refBuf);
      ASSERT_EQ(buf, refBuf) << "loaded values differ at step " << step;
    } else {
      const auto kind = static_cast<ms::FlushKind>(rng.below(3));
      real.flushBlock(addr, kind);
      ref.flushBlock(addr, kind);
    }
    expectSameEvents(real.events(), ref.events, step);
  }
  real.drainAll();
  ref.drainAll();
  expectSameEvents(real.events(), ref.events, kOps);
  expectSameNvm(nvm, refNvm, kOps);
}

// ---------------------------------------------------------------------------
// Range fast path vs element-wise scalar path.
//
// Two instances of the REAL engine over identical NVM stores: one driven
// through loadRange/storeRange, the other through the ascending element-wise
// loop each range call claims to be equivalent to. Every semantic counter,
// loaded value, NVM image and inconsistency measurement must match at every
// step — only the rangeLoads/rangeStores/rangeSplitBlocks diagnostics (which
// expectSameEvents deliberately ignores) may differ. Spans straddle block
// boundaries and start/end at unaligned byte addresses by construction.
// ---------------------------------------------------------------------------

void elementwiseLoad(ms::CacheHierarchy& h, std::uint64_t addr,
                     std::span<std::uint8_t> dst, std::uint32_t elemSize) {
  for (std::uint64_t off = 0; off < dst.size(); off += elemSize) {
    h.load(addr + off, dst.subspan(off, elemSize));
  }
}

void elementwiseStore(ms::CacheHierarchy& h, std::uint64_t addr,
                      std::span<const std::uint8_t> src, std::uint32_t elemSize) {
  for (std::uint64_t off = 0; off < src.size(); off += elemSize) {
    h.store(addr + off, src.subspan(off, elemSize));
  }
}

void expectSameNvmStores(const ms::NvmStore& a, const ms::NvmStore& b,
                         std::uint64_t step) {
  ASSERT_EQ(a.blockWrites(), b.blockWrites()) << "step " << step;
  const std::uint64_t span = std::max(a.imageBytes(), b.imageBytes());
  std::vector<std::uint8_t> bufA(span), bufB(span);
  a.read(0, bufA);
  b.read(0, bufB);
  ASSERT_EQ(bufA, bufB) << "NVM image differs at step " << step;
}

void driveRangeVsElementwise(const ms::CacheConfig& config, std::uint64_t seed,
                             std::uint64_t ops) {
  ms::NvmStore nvmBulk(config.blockSize);
  ms::NvmStore nvmScalar(config.blockSize);
  ms::CacheHierarchy bulk(config, nvmBulk);
  ms::CacheHierarchy scalar(config, nvmScalar);

  easycrash::Rng rng(seed);
  constexpr std::uint64_t kFootprint = 8 * 1024;
  constexpr std::uint32_t kElemSizes[] = {1, 2, 4, 8, 16};
  std::vector<std::uint8_t> buf, refBuf;

  for (std::uint64_t step = 0; step < ops; ++step) {
    const std::uint64_t op = rng.below(100);
    if (op < 35) {  // bulk store vs element-wise store
      const std::uint32_t elemSize = kElemSizes[rng.below(5)];
      const std::uint64_t count = rng.between(1, 48);
      const std::uint64_t bytes = count * elemSize;
      const std::uint64_t addr = rng.below(kFootprint - bytes);
      buf.resize(bytes);
      for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.below(256));
      bulk.storeRange(addr, buf, elemSize);
      elementwiseStore(scalar, addr, buf, elemSize);
    } else if (op < 70) {  // bulk load vs element-wise load, values must agree
      const std::uint32_t elemSize = kElemSizes[rng.below(5)];
      const std::uint64_t count = rng.between(1, 48);
      const std::uint64_t bytes = count * elemSize;
      const std::uint64_t addr = rng.below(kFootprint - bytes);
      buf.assign(bytes, 0xAA);
      refBuf.assign(bytes, 0x55);
      bulk.loadRange(addr, buf, elemSize);
      elementwiseLoad(scalar, addr, refBuf, elemSize);
      ASSERT_EQ(buf, refBuf) << "range-loaded values differ at step " << step;
    } else if (op < 80) {  // interleaved scalar traffic perturbs both equally
      const std::uint64_t size = rng.between(1, 96);
      const std::uint64_t addr = rng.below(kFootprint - size);
      buf.resize(size);
      for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.below(256));
      bulk.store(addr, buf);
      scalar.store(addr, buf);
    } else if (op < 88) {  // flushes interact with range-written dirty state
      const std::uint64_t size = rng.between(1, 512);
      const std::uint64_t addr = rng.below(kFootprint - size);
      const auto kind = static_cast<ms::FlushKind>(rng.below(3));
      bulk.flushRange(addr, size, kind);
      scalar.flushRange(addr, size, kind);
    } else if (op < 94) {  // peek + inconsistency must agree
      const std::uint64_t size = rng.between(1, 256);
      const std::uint64_t addr = rng.below(kFootprint - size);
      buf.assign(size, 0xAA);
      refBuf.assign(size, 0x55);
      bulk.peek(addr, buf);
      scalar.peek(addr, refBuf);
      ASSERT_EQ(buf, refBuf) << "peeked values differ at step " << step;
      ASSERT_EQ(bulk.inconsistentBytes(addr, size),
                scalar.inconsistentBytes(addr, size))
          << "inconsistency differs at step " << step;
    } else if (op < 97) {  // checkpoint drain
      bulk.drainAll();
      scalar.drainAll();
    } else if (op < 99) {  // power loss
      bulk.invalidateAll();
      scalar.invalidateAll();
    } else {
      bulk.checkInvariants();
      scalar.checkInvariants();
    }

    expectSameEvents(bulk.events(), scalar.events(), step);
    if (step % 1024 == 0 || step + 1 == ops) {
      expectSameNvmStores(nvmBulk, nvmScalar, step);
    }
  }

  bulk.drainAll();
  scalar.drainAll();
  expectSameEvents(bulk.events(), scalar.events(), ops);
  expectSameNvmStores(nvmBulk, nvmScalar, ops);
  // The diagnostics are the only permitted divergence — and they must prove
  // the fast path actually ran (and split blocks) on the bulk side only.
  EXPECT_GT(bulk.events().rangeLoads, 0u);
  EXPECT_GT(bulk.events().rangeStores, 0u);
  EXPECT_GT(bulk.events().rangeSplitBlocks,
            bulk.events().rangeLoads + bulk.events().rangeStores)
      << "multi-block spans must split";
  EXPECT_EQ(scalar.events().rangeLoads, 0u);
  EXPECT_EQ(scalar.events().rangeStores, 0u);
  EXPECT_EQ(scalar.events().rangeSplitBlocks, 0u);
}

TEST(MemsimEquivalence, RangeAccessesMatchElementwise) {
  driveRangeVsElementwise(ms::CacheConfig::tiny(), 0xB01DFACE, 40000);
}

TEST(MemsimEquivalence, RangeAccessesMatchElementwiseNonPowerOfTwoSets) {
  ms::CacheConfig config;
  config.name = "np2-range";
  config.blockSize = 64;
  config.levels = {{6ULL * 64, 2}, {10ULL * 64, 2}, {28ULL * 64, 4}};
  config.validate();
  driveRangeVsElementwise(config, 0xFACADE, 20000);
}

// ---------------------------------------------------------------------------
// Multicore range fast path vs element-wise accesses: same discipline, with
// MESI coherence traffic (invalidations, ownership transfers) in the
// comparison — a range store must upgrade/invalidate exactly as the
// element-wise loop does.
// ---------------------------------------------------------------------------

void expectSameCoherence(const ms::CoherenceEvents& a, const ms::CoherenceEvents& b,
                         std::uint64_t step, const char* what) {
  ASSERT_EQ(a.loads, b.loads) << what << " step " << step;
  ASSERT_EQ(a.stores, b.stores) << what << " step " << step;
  ASSERT_EQ(a.privateHits, b.privateHits) << what << " step " << step;
  ASSERT_EQ(a.privateMisses, b.privateMisses) << what << " step " << step;
  ASSERT_EQ(a.llcHits, b.llcHits) << what << " step " << step;
  ASSERT_EQ(a.llcMisses, b.llcMisses) << what << " step " << step;
  ASSERT_EQ(a.invalidationsSent, b.invalidationsSent) << what << " step " << step;
  ASSERT_EQ(a.ownershipTransfers, b.ownershipTransfers) << what << " step " << step;
  ASSERT_EQ(a.nvmBlockWrites, b.nvmBlockWrites) << what << " step " << step;
  ASSERT_EQ(a.nvmBlockReads, b.nvmBlockReads) << what << " step " << step;
  ASSERT_EQ(a.flushDirty, b.flushDirty) << what << " step " << step;
  ASSERT_EQ(a.flushClean, b.flushClean) << what << " step " << step;
  ASSERT_EQ(a.flushNonResident, b.flushNonResident) << what << " step " << step;
}

TEST(MulticoreEquivalence, RangeAccessesMatchElementwise) {
  ms::MulticoreConfig config;
  config.cores = 3;
  config.privateCache = {4ULL * 64, 2};  // tiny: heavy eviction + coherence
  config.sharedLlc = {16ULL * 64, 4};
  config.blockSize = 64;
  config.validate();

  ms::NvmStore nvmBulk(config.blockSize);
  ms::NvmStore nvmScalar(config.blockSize);
  ms::MulticoreSystem bulk(config, nvmBulk);
  ms::MulticoreSystem scalar(config, nvmScalar);

  easycrash::Rng rng(0xCAFED00D);
  constexpr std::uint64_t kFootprint = 4 * 1024;
  constexpr std::uint32_t kElemSizes[] = {1, 4, 8};
  std::vector<std::uint8_t> buf, refBuf;

  for (std::uint64_t step = 0; step < 20000; ++step) {
    const int core = static_cast<int>(rng.below(3));
    const std::uint64_t op = rng.below(100);
    if (op < 40) {
      const std::uint32_t elemSize = kElemSizes[rng.below(3)];
      const std::uint64_t count = rng.between(1, 40);
      const std::uint64_t bytes = count * elemSize;
      const std::uint64_t addr = rng.below(kFootprint - bytes);
      buf.resize(bytes);
      for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.below(256));
      bulk.storeRange(core, addr, buf, elemSize);
      for (std::uint64_t off = 0; off < bytes; off += elemSize) {
        scalar.store(core, addr + off,
                     std::span<const std::uint8_t>(buf).subspan(off, elemSize));
      }
    } else if (op < 80) {
      const std::uint32_t elemSize = kElemSizes[rng.below(3)];
      const std::uint64_t count = rng.between(1, 40);
      const std::uint64_t bytes = count * elemSize;
      const std::uint64_t addr = rng.below(kFootprint - bytes);
      buf.assign(bytes, 0xAA);
      refBuf.assign(bytes, 0x55);
      bulk.loadRange(core, addr, buf, elemSize);
      for (std::uint64_t off = 0; off < bytes; off += elemSize) {
        scalar.load(core, addr + off,
                    std::span<std::uint8_t>(refBuf).subspan(off, elemSize));
      }
      ASSERT_EQ(buf, refBuf) << "range-loaded values differ at step " << step;
    } else if (op < 88) {
      const std::uint64_t size = rng.between(1, 256);
      const std::uint64_t addr = rng.below(kFootprint - size);
      const auto kind = static_cast<ms::FlushKind>(rng.below(3));
      bulk.flushRange(addr, size, kind);
      scalar.flushRange(addr, size, kind);
    } else if (op < 94) {
      const std::uint64_t size = rng.between(1, 128);
      const std::uint64_t addr = rng.below(kFootprint - size);
      buf.assign(size, 0xAA);
      refBuf.assign(size, 0x55);
      bulk.peek(addr, buf);
      scalar.peek(addr, refBuf);
      ASSERT_EQ(buf, refBuf) << "peeked values differ at step " << step;
      ASSERT_EQ(bulk.inconsistentBytes(addr, size),
                scalar.inconsistentBytes(addr, size))
          << "inconsistency differs at step " << step;
    } else if (op < 97) {
      bulk.drainAll();
      scalar.drainAll();
    } else if (op < 99) {
      bulk.invalidateAll();
      scalar.invalidateAll();
    } else {
      bulk.checkInvariants();
      scalar.checkInvariants();
    }

    for (int c = 0; c < config.cores; ++c) {
      expectSameCoherence(bulk.coreEvents(c), scalar.coreEvents(c), step, "core");
    }
    if (step % 1024 == 0 || step == 19999) {
      expectSameNvmStores(nvmBulk, nvmScalar, step);
    }
  }

  bulk.drainAll();
  scalar.drainAll();
  expectSameCoherence(bulk.totalEvents(), scalar.totalEvents(), 20000, "total");
  expectSameNvmStores(nvmBulk, nvmScalar, 20000);
}

}  // namespace
