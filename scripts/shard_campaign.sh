#!/usr/bin/env bash
# Sharded-campaign driver (docs/INTERNALS.md "Sharded campaigns"): fan one
# crash campaign out over k local nvct processes with --shard i/k, watch the
# per-shard live status snapshots, fold the shard journals back together
# with `nvct merge`, and byte-check the merged journal + CSV against an
# unsharded reference run.
#
#   scripts/shard_campaign.sh <build-dir> [shards] [app] [tests] [extra nvct args...]
#
# e.g. scripts/shard_campaign.sh build 3 is 300 --seed 2 --threads 2
#
# Every shard is an ordinary nvct invocation — the SSH-ready command line
# for each is printed before launch, so distributing the same campaign over
# machines is copy-paste: run shard i on host i against a shared (or
# scp'd-back) journal directory, then `nvct merge` anywhere. A shard that
# dies mid-run leaves a crash-safe journal; re-run its exact command line
# plus `--resume <its journal>` and merge as normal.
set -euo pipefail

BUILD_DIR=${1:?usage: shard_campaign.sh <build-dir> [shards] [app] [tests] [extra nvct args...]}
SHARDS=${2:-3}
APP=${3:-sp}
TESTS=${4:-60}
shift $(( $# > 4 ? 4 : $# ))
EXTRA_ARGS=("$@")
NVCT="$BUILD_DIR/tools/nvct"
TRACE_LINT="$BUILD_DIR/tools/trace_lint"
WORK=${SHARD_WORK_DIR:-$(mktemp -d)}
[[ -n "${SHARD_WORK_DIR:-}" ]] || trap 'rm -rf "$WORK"' EXIT

echo "== fanning $APP --tests $TESTS out over $SHARDS shard processes =="
PIDS=()
for (( i = 0; i < SHARDS; i++ )); do
  CMD=("$NVCT" --app "$APP" --tests "$TESTS" --shard "$i/$SHARDS"
       --journal "$WORK/shard_$i.jsonl"
       --status-out "$WORK/shard_$i.status.json" --status-interval-ms 200
       --no-progress "${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}")
  echo "shard $i/$SHARDS: ${CMD[*]}"
  "${CMD[@]}" > "$WORK/shard_$i.log" 2>&1 &
  PIDS+=($!)
done

# Stream progress from the live status snapshots while the shards run.
while :; do
  RUNNING=0
  for PID in "${PIDS[@]}"; do
    kill -0 "$PID" 2>/dev/null && RUNNING=$((RUNNING + 1))
  done
  LINE="shards running: $RUNNING/$SHARDS"
  for (( i = 0; i < SHARDS; i++ )); do
    STATUS="$WORK/shard_$i.status.json"
    if [[ -f "$STATUS" ]]; then
      DECIDED=$(grep -o '"decided":[0-9]*' "$STATUS" | cut -d: -f2 || true)
      OWNED=$(grep -o '"tests":[0-9]*' "$STATUS" | cut -d: -f2 || true)
      LINE+="  [$i] ${DECIDED:-0}/${OWNED:-?}"
    else
      LINE+="  [$i] -"
    fi
  done
  echo "$LINE"
  (( RUNNING == 0 )) && break
  sleep 0.5
done

FAILED=0
for (( i = 0; i < SHARDS; i++ )); do
  if ! wait "${PIDS[$i]}"; then
    echo "FAIL: shard $i exited nonzero:"
    tail -n 5 "$WORK/shard_$i.log"
    FAILED=1
  fi
done
(( FAILED == 0 )) || exit 1

echo "== linting the per-shard status snapshots and journals =="
MERGE_ARGS=()
for (( i = 0; i < SHARDS; i++ )); do
  "$TRACE_LINT" --status "$WORK/shard_$i.status.json" \
    --journal "$WORK/shard_$i.jsonl"
  MERGE_ARGS+=(--journal "$WORK/shard_$i.jsonl")
done

echo "== merging $SHARDS shard journals =="
"$NVCT" merge "${MERGE_ARGS[@]}" \
  --journal-out "$WORK/merged.jsonl" \
  --csv-out "$WORK/merged.csv" \
  --metrics-out "$WORK/merged_metrics.json" \
  --report-out "$WORK/merged_report.md"

echo "== unsharded reference run =="
"$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
  --journal "$WORK/reference.jsonl" --csv-out "$WORK/reference.csv" \
  "${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}" > /dev/null

OK=1
cmp "$WORK/merged.jsonl" "$WORK/reference.jsonl" \
  || { echo "FAIL: merged journal differs from the unsharded run"; OK=0; }
cmp "$WORK/merged.csv" "$WORK/reference.csv" \
  || { echo "FAIL: merged CSV differs from the unsharded run"; OK=0; }
(( OK == 1 )) || exit 1
echo "PASS: $SHARDS-shard merge is byte-identical to the unsharded campaign"
