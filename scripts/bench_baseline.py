#!/usr/bin/env python3
"""Benchmark-gated perf baseline for the memory-system simulator.

Runs the google-benchmark microbenchmark suite (bench_memsim_micro) with
--benchmark_out, then compares each benchmark's real_time against the
checked-in baseline (bench/baselines/BENCH_memsim.json by default) and fails
when any benchmark regressed beyond the tolerance. Refresh the baseline on a
quiet machine with --update after intentional perf changes.

The campaign benchmarks also export deterministic simulation counters
(golden_accesses, golden_nvm_writes, profile_samples). Counters present in
both the baseline and the fresh run must match exactly — the simulator's
work must not change shape under a perf PR. After an intentional behaviour
change, merge fresh counters into the baseline without touching its timings
via --update-counters.

Typical use:

    cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-bench -j --target bench_memsim_micro
    python3 scripts/bench_baseline.py --binary build-bench/bench/bench_memsim_micro

CI runs with a generous --tolerance (shared runners are noisy); the recorded
numbers in bench/baselines/ are the authoritative before/after evidence for
perf PRs (BENCH_memsim.pre.json preserves the pre-optimisation timings).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "bench" / "baselines" / "BENCH_memsim.json"

# Deterministic simulation counters the benchmarks export; only these are
# diffed, so incidental google-benchmark fields never match. dirty_blocks is
# BM_Postmortem's dirty-index population — the scan's candidate set must not
# silently change shape under a perf PR any more than the campaign's work.
COUNTER_NAMES = ("golden_accesses", "golden_nvm_writes", "profile_samples",
                 "dirty_blocks")


def load_times(path: pathlib.Path) -> dict[str, tuple[float, str]]:
    """Benchmark name -> (real_time, time_unit) from a --benchmark_out JSON."""
    with path.open() as fh:
        doc = json.load(fh)
    times: dict[str, tuple[float, str]] = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate (mean/median/stddev) rows
        times[bench["name"]] = (float(bench["real_time"]), bench.get("time_unit", "ns"))
    return times


def load_counters(path: pathlib.Path) -> dict[str, dict[str, float]]:
    """Benchmark name -> {counter: value} for the allowlisted counters."""
    with path.open() as fh:
        doc = json.load(fh)
    counters: dict[str, dict[str, float]] = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        found = {name: float(bench[name]) for name in COUNTER_NAMES if name in bench}
        if found:
            counters[bench["name"]] = found
    return counters


def compare_counters(baseline: dict[str, dict[str, float]],
                     fresh: dict[str, dict[str, float]]) -> int:
    """Counters present in BOTH sides must match exactly (the simulation is
    deterministic); one-sided counters are reported but never fail, so a
    telemetry-OFF run (profile counters zero) can still gate timings."""
    mismatches = 0
    for name in sorted(set(baseline) & set(fresh)):
        for counter in sorted(set(baseline[name]) & set(fresh[name])):
            base_value = baseline[name][counter]
            cur_value = fresh[name][counter]
            if base_value != cur_value:
                print(f"{name}/{counter}: baseline {base_value:.0f} != "
                      f"current {cur_value:.0f}  << COUNTER MISMATCH")
                mismatches += 1
    only = sorted(set(fresh) - set(baseline))
    for name in only:
        print(f"{name}: counters not in baseline (record with --update-counters)")
    return mismatches


def merge_counters(baseline_path: pathlib.Path, result_path: pathlib.Path) -> int:
    """Copy the fresh run's allowlisted counters into the baseline file's
    matching benchmark entries, leaving every timing untouched."""
    with baseline_path.open() as fh:
        doc = json.load(fh)
    fresh = load_counters(result_path)
    merged = 0
    for bench in doc.get("benchmarks", []):
        update = fresh.get(bench.get("name", ""))
        if not update:
            continue
        for counter, value in update.items():
            bench[counter] = value
            merged += 1
    baseline_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"merged {merged} counter value(s) into {baseline_path}")
    return 0 if merged else 2


def run_suite(binary: pathlib.Path, out: pathlib.Path, bench_filter: str,
              min_time: float) -> None:
    cmd = [
        str(binary),
        f"--benchmark_out={out}",
        "--benchmark_out_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True)


def compare(baseline: dict[str, tuple[float, str]],
            fresh: dict[str, tuple[float, str]], tolerance: float,
            subset: bool) -> int:
    """Compare fresh against baseline; with subset=True (a filtered run),
    baseline entries absent from fresh are skipped instead of failing."""
    regressions = 0
    width = max((len(n) for n in baseline), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(baseline):
        base_time, unit = baseline[name]
        if name not in fresh:
            if not subset:
                print(f"{name:<{width}}  {base_time:>10.1f}{unit}  {'MISSING':>12}  -")
                regressions += 1
            continue
        cur_time, cur_unit = fresh[name]
        if cur_unit != unit:
            print(f"{name:<{width}}  unit mismatch: {unit} vs {cur_unit}")
            regressions += 1
            continue
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        flag = "" if ratio <= tolerance else "  << REGRESSION"
        print(f"{name:<{width}}  {base_time:>10.1f}{unit}  {cur_time:>10.1f}{unit}"
              f"  {ratio:>5.2f}x{flag}")
        if ratio > tolerance:
            regressions += 1
    extra = sorted(set(fresh) - set(baseline))
    for name in extra:
        cur_time, unit = fresh[name]
        print(f"{name:<{width}}  {'(new)':>12}  {cur_time:>10.1f}{unit}  -")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary",
                        default=str(REPO_ROOT / "build-bench" / "bench" /
                                    "bench_memsim_micro"),
                        help="bench_memsim_micro binary (Release build)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="checked-in baseline JSON to compare against")
    parser.add_argument("--out", default="",
                        help="where to write the fresh --benchmark_out JSON "
                             "(default: a temporary file)")
    parser.add_argument("--parse-only", metavar="RESULT_JSON", default="",
                        help="skip running the binary; compare this existing "
                             "--benchmark_out JSON against the baseline")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex passed to the binary")
    parser.add_argument("--min-time", type=float, default=0.2,
                        help="--benchmark_min_time per benchmark (seconds)")
    parser.add_argument("--tolerance", type=float, default=1.30,
                        help="fail when current/baseline real_time exceeds "
                             "this ratio (default 1.30)")
    parser.add_argument("--update", action="store_true",
                        help="write the fresh results over the baseline file "
                             "instead of comparing")
    parser.add_argument("--update-counters", action="store_true",
                        help="merge the fresh run's simulation counters into "
                             "the baseline file without touching its timings")
    args = parser.parse_args()

    if args.parse_only:
        result_path = pathlib.Path(args.parse_only)
    else:
        binary = pathlib.Path(args.binary)
        if not binary.exists():
            print(f"error: benchmark binary not found: {binary}", file=sys.stderr)
            return 2
        if args.out:
            result_path = pathlib.Path(args.out)
        else:
            result_path = pathlib.Path(tempfile.mkstemp(suffix=".json")[1])
        run_suite(binary, result_path, args.filter, args.min_time)

    fresh = load_times(result_path)
    if not fresh:
        print("error: no benchmark results parsed", file=sys.stderr)
        return 2

    baseline_path = pathlib.Path(args.baseline)
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(result_path.read_text())
        print(f"baseline updated: {baseline_path} ({len(fresh)} benchmarks)")
        return 0

    if not baseline_path.exists():
        print(f"error: baseline not found: {baseline_path} "
              "(record one with --update)", file=sys.stderr)
        return 2
    if args.update_counters:
        return merge_counters(baseline_path, result_path)
    regressions = compare(load_times(baseline_path), fresh, args.tolerance,
                          subset=bool(args.filter) or bool(args.parse_only))
    mismatches = compare_counters(load_counters(baseline_path),
                                  load_counters(result_path))
    if regressions or mismatches:
        if regressions:
            print(f"FAIL: {regressions} benchmark(s) regressed beyond "
                  f"{args.tolerance:.2f}x", file=sys.stderr)
        if mismatches:
            print(f"FAIL: {mismatches} simulation counter(s) diverged from "
                  "the baseline", file=sys.stderr)
        return 1
    print("OK: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
