#!/usr/bin/env python3
"""Benchmark-gated perf baseline for the memory-system simulator.

Runs the google-benchmark microbenchmark suite (bench_memsim_micro) with
--benchmark_out, then compares each benchmark's real_time against the
checked-in baseline (bench/baselines/BENCH_memsim.json by default) and fails
when any benchmark regressed beyond the tolerance. Refresh the baseline on a
quiet machine with --update after intentional perf changes.

Typical use:

    cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-bench -j --target bench_memsim_micro
    python3 scripts/bench_baseline.py --binary build-bench/bench/bench_memsim_micro

CI runs with a generous --tolerance (shared runners are noisy); the recorded
numbers in bench/baselines/ are the authoritative before/after evidence for
perf PRs (BENCH_memsim.pre.json preserves the pre-optimisation timings).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "bench" / "baselines" / "BENCH_memsim.json"


def load_times(path: pathlib.Path) -> dict[str, tuple[float, str]]:
    """Benchmark name -> (real_time, time_unit) from a --benchmark_out JSON."""
    with path.open() as fh:
        doc = json.load(fh)
    times: dict[str, tuple[float, str]] = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate (mean/median/stddev) rows
        times[bench["name"]] = (float(bench["real_time"]), bench.get("time_unit", "ns"))
    return times


def run_suite(binary: pathlib.Path, out: pathlib.Path, bench_filter: str,
              min_time: float) -> None:
    cmd = [
        str(binary),
        f"--benchmark_out={out}",
        "--benchmark_out_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True)


def compare(baseline: dict[str, tuple[float, str]],
            fresh: dict[str, tuple[float, str]], tolerance: float,
            subset: bool) -> int:
    """Compare fresh against baseline; with subset=True (a filtered run),
    baseline entries absent from fresh are skipped instead of failing."""
    regressions = 0
    width = max((len(n) for n in baseline), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(baseline):
        base_time, unit = baseline[name]
        if name not in fresh:
            if not subset:
                print(f"{name:<{width}}  {base_time:>10.1f}{unit}  {'MISSING':>12}  -")
                regressions += 1
            continue
        cur_time, cur_unit = fresh[name]
        if cur_unit != unit:
            print(f"{name:<{width}}  unit mismatch: {unit} vs {cur_unit}")
            regressions += 1
            continue
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        flag = "" if ratio <= tolerance else "  << REGRESSION"
        print(f"{name:<{width}}  {base_time:>10.1f}{unit}  {cur_time:>10.1f}{unit}"
              f"  {ratio:>5.2f}x{flag}")
        if ratio > tolerance:
            regressions += 1
    extra = sorted(set(fresh) - set(baseline))
    for name in extra:
        cur_time, unit = fresh[name]
        print(f"{name:<{width}}  {'(new)':>12}  {cur_time:>10.1f}{unit}  -")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary",
                        default=str(REPO_ROOT / "build-bench" / "bench" /
                                    "bench_memsim_micro"),
                        help="bench_memsim_micro binary (Release build)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="checked-in baseline JSON to compare against")
    parser.add_argument("--out", default="",
                        help="where to write the fresh --benchmark_out JSON "
                             "(default: a temporary file)")
    parser.add_argument("--parse-only", metavar="RESULT_JSON", default="",
                        help="skip running the binary; compare this existing "
                             "--benchmark_out JSON against the baseline")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex passed to the binary")
    parser.add_argument("--min-time", type=float, default=0.2,
                        help="--benchmark_min_time per benchmark (seconds)")
    parser.add_argument("--tolerance", type=float, default=1.30,
                        help="fail when current/baseline real_time exceeds "
                             "this ratio (default 1.30)")
    parser.add_argument("--update", action="store_true",
                        help="write the fresh results over the baseline file "
                             "instead of comparing")
    args = parser.parse_args()

    if args.parse_only:
        result_path = pathlib.Path(args.parse_only)
    else:
        binary = pathlib.Path(args.binary)
        if not binary.exists():
            print(f"error: benchmark binary not found: {binary}", file=sys.stderr)
            return 2
        if args.out:
            result_path = pathlib.Path(args.out)
        else:
            result_path = pathlib.Path(tempfile.mkstemp(suffix=".json")[1])
        run_suite(binary, result_path, args.filter, args.min_time)

    fresh = load_times(result_path)
    if not fresh:
        print("error: no benchmark results parsed", file=sys.stderr)
        return 2

    baseline_path = pathlib.Path(args.baseline)
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(result_path.read_text())
        print(f"baseline updated: {baseline_path} ({len(fresh)} benchmarks)")
        return 0

    if not baseline_path.exists():
        print(f"error: baseline not found: {baseline_path} "
              "(record one with --update)", file=sys.stderr)
        return 2
    regressions = compare(load_times(baseline_path), fresh, args.tolerance,
                          subset=bool(args.filter) or bool(args.parse_only))
    if regressions:
        print(f"FAIL: {regressions} benchmark(s) regressed beyond "
              f"{args.tolerance:.2f}x", file=sys.stderr)
        return 1
    print("OK: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
