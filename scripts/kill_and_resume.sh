#!/usr/bin/env bash
# Real-signal variant of the nvct_resilience_* ctest fixtures: start a
# campaign with a journal, kill it mid-flight, resume from the journal, and
# require the resumed CSV to be byte-identical to an uninterrupted run's
# (docs/ROBUSTNESS.md).
#
#   scripts/kill_and_resume.sh <build-dir> [TERM|KILL|WORKER]
#
# SIGTERM exercises the graceful path: nvct drains in-flight trials, flushes
# the journal, and exits 130. SIGKILL proves crash safety: the process gets
# no chance to clean up, yet the journal on disk is still a complete,
# lintable prefix (at most one un-flushed batch of trials is lost). WORKER
# SIGKILLs an individual fork-evaluator worker child instead of the campaign:
# nvct must self-heal — respawn the worker, retry the interrupted trial, and
# finish with a CSV byte-identical to an undisturbed run's. Every mode
# asserts that no worker child outlives the campaign (no orphans).
set -euo pipefail

BUILD_DIR=${1:?usage: kill_and_resume.sh <build-dir> [TERM|KILL|WORKER]}
SIGNAL=${2:-TERM}
NVCT="$BUILD_DIR/tools/nvct"
TRACE_LINT="$BUILD_DIR/tools/trace_lint"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

APP=sp
TESTS=120
JOURNAL="$WORK/journal.jsonl"

# The campaign (and its pre-forked workers) all carry the unique journal
# path on their command line: after the campaign is gone, any process still
# matching it is an orphaned worker.
assert_no_orphans() {
  sleep 0.5  # PDEATHSIG delivery / pool teardown race headroom
  if pgrep -f "$JOURNAL" > /dev/null 2>&1; then
    echo "FAIL: orphaned worker processes survived the campaign:"
    pgrep -af "$JOURNAL" || true
    exit 1
  fi
  echo "ok: no orphaned workers"
}

if [[ "$SIGNAL" == WORKER ]]; then
  echo "== campaign with a SIGKILLed worker child =="
  "$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
    --journal "$JOURNAL" --journal-flush-every 4 \
    --csv-out "$WORK/healed.csv" --metrics-out "$WORK/healed_metrics.json" &
  PID=$!

  # Wait until trials are flowing so the kill lands on a busy worker pool.
  for _ in $(seq 1 300); do
    if [[ -f "$JOURNAL" ]] && (( $(wc -l < "$JOURNAL") >= 3 )); then
      break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
      echo "FAIL: campaign finished before the worker kill (grow TESTS)"
      wait "$PID" || true
      exit 1
    fi
    sleep 0.2
  done

  WORKER_PID=$(pgrep -P "$PID" | head -n 1 || true)
  [[ -n "$WORKER_PID" ]] || { echo "FAIL: no worker child to kill"; exit 1; }
  echo "== SIGKILL worker $WORKER_PID (campaign $PID keeps running) =="
  kill -KILL "$WORKER_PID"

  wait "$PID" || { echo "FAIL: campaign died with its worker"; exit 1; }
  assert_no_orphans
  "$TRACE_LINT" --journal "$JOURNAL"

  python3 - "$WORK/healed_metrics.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
deaths = counters.get("campaign.worker_kills", 0) + counters.get(
    "campaign.worker_crashes", 0)
assert deaths >= 1, f"no worker death recorded: {deaths}"
assert counters.get("campaign.worker_respawns", 0) >= 0
print(f"ok: {deaths} worker death(s) recorded, "
      f"{counters.get('campaign.worker_respawns', 0)} respawn(s)")
EOF

  echo "== undisturbed reference run =="
  "$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
    --csv-out "$WORK/fresh.csv"

  if cmp "$WORK/healed.csv" "$WORK/fresh.csv"; then
    echo "PASS: campaign self-healed; results byte-identical to undisturbed run"
  else
    echo "FAIL: self-healed CSV differs from the undisturbed run"
    exit 1
  fi
  exit 0
fi

echo "== campaign under SIG$SIGNAL =="
"$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
  --journal "$JOURNAL" --journal-flush-every 4 &
PID=$!

# Wait until the journal holds at least a header plus 8 decided trials, so
# the kill lands mid-campaign rather than before or after it.
for _ in $(seq 1 300); do
  if [[ -f "$JOURNAL" ]] && (( $(wc -l < "$JOURNAL") >= 9 )); then
    break
  fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: campaign finished before the kill (grow TESTS)"
    wait "$PID" || true
    exit 1
  fi
  sleep 0.2
done

kill "-$SIGNAL" "$PID"
set +e
wait "$PID"
STATUS=$?
set -e
if [[ "$SIGNAL" == TERM ]]; then
  # Graceful drain: distinct interrupted exit code.
  [[ $STATUS -eq 130 ]] || { echo "FAIL: expected exit 130, got $STATUS"; exit 1; }
else
  # SIGKILL: death by signal (128 + 9).
  [[ $STATUS -eq 137 ]] || { echo "FAIL: expected exit 137, got $STATUS"; exit 1; }
fi

# The graceful drain must have destroyed the worker pool; under SIGKILL the
# workers' parent-death signal must have taken them down.
assert_no_orphans

DECIDED=$(( $(wc -l < "$JOURNAL") - 1 ))
echo "== journal holds $DECIDED decided trials; linting =="
"$TRACE_LINT" --journal "$JOURNAL"
(( DECIDED >= 1 && DECIDED < TESTS )) || {
  echo "FAIL: kill did not land mid-campaign ($DECIDED/$TESTS)"; exit 1; }

echo "== resuming =="
"$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
  --journal "$JOURNAL" --resume "$JOURNAL" \
  --csv-out "$WORK/resumed.csv"
assert_no_orphans

echo "== uninterrupted reference run =="
"$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
  --csv-out "$WORK/fresh.csv"

if cmp "$WORK/resumed.csv" "$WORK/fresh.csv"; then
  echo "PASS: resumed campaign is byte-identical to the uninterrupted run"
else
  echo "FAIL: resumed CSV differs from the uninterrupted run"
  exit 1
fi
