#!/usr/bin/env bash
# Real-signal variant of the nvct_resilience_* ctest fixtures: start a
# campaign with a journal, kill it mid-flight, resume from the journal, and
# require the resumed CSV to be byte-identical to an uninterrupted run's
# (docs/ROBUSTNESS.md).
#
#   scripts/kill_and_resume.sh <build-dir> [TERM|KILL]
#
# SIGTERM exercises the graceful path: nvct drains in-flight trials, flushes
# the journal, and exits 130. SIGKILL proves crash safety: the process gets
# no chance to clean up, yet the journal on disk is still a complete,
# lintable prefix (at most one un-flushed batch of trials is lost).
set -euo pipefail

BUILD_DIR=${1:?usage: kill_and_resume.sh <build-dir> [TERM|KILL]}
SIGNAL=${2:-TERM}
NVCT="$BUILD_DIR/tools/nvct"
TRACE_LINT="$BUILD_DIR/tools/trace_lint"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

APP=sp
TESTS=120
JOURNAL="$WORK/journal.jsonl"

echo "== campaign under SIG$SIGNAL =="
"$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
  --journal "$JOURNAL" --journal-flush-every 4 &
PID=$!

# Wait until the journal holds at least a header plus 8 decided trials, so
# the kill lands mid-campaign rather than before or after it.
for _ in $(seq 1 300); do
  if [[ -f "$JOURNAL" ]] && (( $(wc -l < "$JOURNAL") >= 9 )); then
    break
  fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: campaign finished before the kill (grow TESTS)"
    wait "$PID" || true
    exit 1
  fi
  sleep 0.2
done

kill "-$SIGNAL" "$PID"
set +e
wait "$PID"
STATUS=$?
set -e
if [[ "$SIGNAL" == TERM ]]; then
  # Graceful drain: distinct interrupted exit code.
  [[ $STATUS -eq 130 ]] || { echo "FAIL: expected exit 130, got $STATUS"; exit 1; }
else
  # SIGKILL: death by signal (128 + 9).
  [[ $STATUS -eq 137 ]] || { echo "FAIL: expected exit 137, got $STATUS"; exit 1; }
fi

DECIDED=$(( $(wc -l < "$JOURNAL") - 1 ))
echo "== journal holds $DECIDED decided trials; linting =="
"$TRACE_LINT" --journal "$JOURNAL"
(( DECIDED >= 1 && DECIDED < TESTS )) || {
  echo "FAIL: kill did not land mid-campaign ($DECIDED/$TESTS)"; exit 1; }

echo "== resuming =="
"$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
  --journal "$JOURNAL" --resume "$JOURNAL" \
  --csv-out "$WORK/resumed.csv"

echo "== uninterrupted reference run =="
"$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
  --csv-out "$WORK/fresh.csv"

if cmp "$WORK/resumed.csv" "$WORK/fresh.csv"; then
  echo "PASS: resumed campaign is byte-identical to the uninterrupted run"
else
  echo "FAIL: resumed CSV differs from the uninterrupted run"
  exit 1
fi
