#!/usr/bin/env bash
# Chaos differential for deterministic fault injection (docs/ROBUSTNESS.md):
# a real SIGSEGV injected at one tracked-access index must destroy exactly
# the trials whose crashing run reaches that index — every earlier trial's
# result must be byte-identical to a fault-free in-process run's.
#
#   scripts/chaos_inject.sh <build-dir>
#
# The flow: run a clean `--isolation none` reference, pick the median crash
# access as the injection point (guaranteed mid-window, so both sides of the
# split are populated), re-run under `--inject segv:<IDX>`, and require
#   faulted.csv == clean.csv rows with crash_access < IDX   (byte compare)
#   journal trial_failure count == clean rows with crash_access >= IDX
# plus a journal lint that every recorded failure carries kind "crashed".
set -euo pipefail

BUILD_DIR=${1:?usage: chaos_inject.sh <build-dir>}
NVCT="$BUILD_DIR/tools/nvct"
TRACE_LINT="$BUILD_DIR/tools/trace_lint"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

APP=sp
TESTS=24

echo "== clean in-process reference (--isolation none) =="
"$NVCT" --app "$APP" --tests "$TESTS" --no-progress --isolation none \
  --csv-out "$WORK/clean.csv" > /dev/null

IDX=$(tail -n +2 "$WORK/clean.csv" | cut -d, -f1 | sort -n |
      awk '{ a[NR] = $1 } END { print a[int((NR + 1) / 2)] }')
SURVIVORS=$(awk -F, -v idx="$IDX" 'NR > 1 && $1 + 0 < idx' "$WORK/clean.csv" |
            wc -l)
VICTIMS=$((TESTS - SURVIVORS))
echo "== injecting segv at access $IDX ($SURVIVORS survivors, $VICTIMS victims) =="
(( SURVIVORS >= 1 && VICTIMS >= 1 )) || {
  echo "FAIL: injection point is not mid-window"; exit 1; }

"$NVCT" --app "$APP" --tests "$TESTS" --no-progress \
  --inject "segv:$IDX" --trial-retries 0 --max-trial-failures -1 \
  --journal "$WORK/journal.jsonl" --csv-out "$WORK/faulted.csv" > /dev/null

echo "== journal lint (every failure must be kind 'crashed') =="
"$TRACE_LINT" --journal "$WORK/journal.jsonl" --require-failure-kind crashed

FAILURES=$(grep -c '"type":"trial_failure"' "$WORK/journal.jsonl")
[[ "$FAILURES" -eq "$VICTIMS" ]] || {
  echo "FAIL: expected $VICTIMS trial failures, journal holds $FAILURES"
  exit 1
}
echo "ok: $FAILURES trials died on the injected fault"

awk -F, -v idx="$IDX" 'NR == 1 || $1 + 0 < idx' "$WORK/clean.csv" \
  > "$WORK/expected.csv"
if cmp "$WORK/faulted.csv" "$WORK/expected.csv"; then
  echo "PASS: non-faulting trials are byte-identical to the clean run"
else
  echo "FAIL: fault injection disturbed trials that never reached it"
  exit 1
fi
