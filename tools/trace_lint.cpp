// trace_lint — validates telemetry artifacts produced by nvct and the bench
// binaries, so a corrupted trace fails fast instead of poisoning analysis.
//
//   trace_lint --trace trace.jsonl                       # every line parses
//   trace_lint --trace trace.jsonl --require-field app   # field presence
//   trace_lint --metrics metrics.json --require-counter memsim.nvmBlockWrites
//
// Exit status 0 iff every check passes; failures name the offending line.
// Doubles as the e2e check behind the nvct smoke test in tests/.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "easycrash/common/cli.hpp"
#include "easycrash/telemetry/json.hpp"

namespace ec = easycrash;
namespace json = easycrash::telemetry::json;

namespace {

std::vector<std::string> splitCsv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int lintTrace(const std::string& path, const std::vector<std::string>& requiredFields) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "trace_lint: cannot open " << path << '\n';
    return 1;
  }
  std::string line;
  std::uint64_t lineNo = 0;
  std::uint64_t events = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::string error;
    const auto value = json::parse(line, &error);
    if (!value) {
      std::cerr << "trace_lint: " << path << ':' << lineNo << ": " << error << '\n';
      return 1;
    }
    if (!value->isObject()) {
      std::cerr << "trace_lint: " << path << ':' << lineNo << ": not a JSON object\n";
      return 1;
    }
    const json::Value* type = value->find("type");
    if (type == nullptr || !type->isString() || type->string.empty()) {
      std::cerr << "trace_lint: " << path << ':' << lineNo << ": missing \"type\"\n";
      return 1;
    }
    const json::Value* ts = value->find("ts_ns");
    if (ts == nullptr || !ts->isNumber() || ts->number < 0) {
      std::cerr << "trace_lint: " << path << ':' << lineNo << ": missing \"ts_ns\"\n";
      return 1;
    }
    for (const auto& field : requiredFields) {
      if (value->find(field) == nullptr) {
        std::cerr << "trace_lint: " << path << ':' << lineNo << ": missing required field \""
                  << field << "\" (event type " << type->string << ")\n";
        return 1;
      }
    }
    ++events;
  }
  if (events == 0) {
    std::cerr << "trace_lint: " << path << " contains no events\n";
    return 1;
  }
  std::cout << path << ": " << events << " events ok\n";
  return 0;
}

int lintMetrics(const std::string& path, const std::vector<std::string>& requiredCounters) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "trace_lint: cannot open " << path << '\n';
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  const auto value = json::parse(buffer.str(), &error);
  if (!value) {
    std::cerr << "trace_lint: " << path << ": " << error << '\n';
    return 1;
  }
  const json::Value* counters = value->isObject() ? value->find("counters") : nullptr;
  if (counters == nullptr || !counters->isObject()) {
    std::cerr << "trace_lint: " << path << ": missing \"counters\" object\n";
    return 1;
  }
  for (const auto& name : requiredCounters) {
    const json::Value* counter = counters->find(name);
    if (counter == nullptr || !counter->isNumber()) {
      std::cerr << "trace_lint: " << path << ": missing counter \"" << name << "\"\n";
      return 1;
    }
    if (counter->number <= 0) {
      std::cerr << "trace_lint: " << path << ": counter \"" << name << "\" is zero\n";
      return 1;
    }
  }
  std::cout << path << ": metrics ok (" << counters->object.size() << " counters)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ec::CliParser cli(
      "trace_lint — validate telemetry traces (JSONL) and metrics snapshots.");
  cli.addString("trace", "", "JSONL trace file to validate");
  cli.addString("metrics", "", "metrics JSON snapshot to validate");
  cli.addString("require-field", "",
                "comma-separated fields every trace event must carry");
  cli.addString("require-counter", "",
                "comma-separated counters that must be present and non-zero");
  if (!cli.parse(argc, argv)) return 0;

  try {
    const std::string tracePath = cli.getString("trace");
    const std::string metricsPath = cli.getString("metrics");
    if (tracePath.empty() && metricsPath.empty()) {
      std::cerr << "trace_lint: nothing to do (--trace and/or --metrics)\n";
      return 1;
    }
    int status = 0;
    if (!tracePath.empty()) {
      status |= lintTrace(tracePath, splitCsv(cli.getString("require-field")));
    }
    if (!metricsPath.empty()) {
      status |= lintMetrics(metricsPath, splitCsv(cli.getString("require-counter")));
    }
    return status;
  } catch (const std::exception& e) {
    std::cerr << "trace_lint: " << e.what() << '\n';
    return 1;
  }
}
