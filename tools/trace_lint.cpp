// trace_lint — validates telemetry artifacts produced by nvct and the bench
// binaries, so a corrupted trace fails fast instead of poisoning analysis.
//
//   trace_lint --trace trace.jsonl                       # every line parses
//   trace_lint --trace trace.jsonl --require-field app   # field presence
//   trace_lint --trace trace.jsonl --stats               # event-type census
//   trace_lint --metrics metrics.json --require-counter memsim.nvmBlockWrites
//   trace_lint --journal campaign.jsonl                  # resume journal
//   trace_lint --status status.json                      # live status snapshot
//
// Trace mode additionally knows the per-type schema of the sweep
// evaluator's events (docs/INTERNALS.md): a sweep_capture must carry
// run/crash_access/region/iteration/trials and a sweep_end must carry
// run/captures/planned/completed with captures <= planned — an analysis
// joining captures against trial_end rows breaks silently otherwise. The
// flight recorder's phase spans (docs/OBSERVABILITY.md) are checked too: a
// phase_begin must name its "phase" and a phase_end must additionally carry
// a non-negative "duration_ns", and a postmortem_scan must carry its block
// tallies plus the compare kernel that ran. --stats appends a name-sorted
// event-type frequency table, a quick census of what a trace actually
// contains.
//
// Status mode validates one live snapshot written by nvct --status-out: a
// single campaign_status object whose tallies are self-consistent
// (s1+s2+s3+s4+failures == decided <= tests).
//
// Journal mode checks the campaign-journal schema (docs/ROBUSTNESS.md):
// line 1 is a well-formed campaign_header; every following line is a trial
// or trial_failure with indices inside [0, tests); trial responses are
// S1-S4 with inconsistency rates in [0, 1]. A header declaring
// "format":"segments" (the append-only writer) may repeat and reorder
// indices — the reader compacts, last record per index wins — while a
// legacy header additionally requires strictly monotone, unique indices.
//
// Exit status 0 iff every check passes; failures name the offending line.
// Doubles as the e2e check behind the nvct smoke test in tests/.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "easycrash/common/cli.hpp"
#include "easycrash/telemetry/json.hpp"

namespace ec = easycrash;
namespace json = easycrash::telemetry::json;

namespace {

std::vector<std::string> splitCsv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool numberField(const json::Value& value, const char* name, double* out = nullptr) {
  const json::Value* field = value.find(name);
  if (field == nullptr || !field->isNumber()) return false;
  if (out != nullptr) *out = field->number;
  return true;
}

/// Per-type schema of the flight recorder's phase-span events. Returns an
/// empty string when the event is well-formed (or not a phase event).
std::string lintPhaseEvent(const json::Value& value, const std::string& type) {
  if (type != "phase_begin" && type != "phase_end") return {};
  const json::Value* phase = value.find("phase");
  if (phase == nullptr || !phase->isString() || phase->string.empty()) {
    return type + " missing \"phase\"";
  }
  if (type == "phase_end") {
    double durationNs = 0;
    if (!numberField(value, "duration_ns", &durationNs) || durationNs < 0) {
      return "phase_end missing non-negative \"duration_ns\"";
    }
  }
  return {};
}

/// Per-type schema of the fork evaluator's worker lifecycle events
/// (docs/ROBUSTNESS.md). Returns an empty string when the event is
/// well-formed (or not a worker event).
std::string lintWorkerEvent(const json::Value& value, const std::string& type) {
  if (type != "worker_exit" && type != "worker_respawn") return {};
  double slot = 0;
  double pid = 0;
  if (!numberField(value, "slot", &slot) || slot < 0) {
    return type + " missing non-negative \"slot\"";
  }
  if (!numberField(value, "pid", &pid) || pid < 0) {
    return type + " missing non-negative \"pid\"";
  }
  if (type == "worker_exit") {
    const json::Value* death = value.find("death");
    if (death == nullptr || !death->isString() || death->string.empty()) {
      return "worker_exit missing \"death\"";
    }
    if (!numberField(value, "signal") || !numberField(value, "exit_code")) {
      return "worker_exit missing \"signal\"/\"exit_code\"";
    }
    const json::Value* timeout = value.find("timeout");
    if (timeout == nullptr ||
        !(timeout->kind == json::Value::Kind::Bool || timeout->isNumber())) {
      return "worker_exit missing \"timeout\"";
    }
  }
  return {};
}

/// Per-type schema of the sweep evaluator's trace events. Returns an empty
/// string when the event is well-formed (or not a sweep event).
std::string lintSweepEvent(const json::Value& value, const std::string& type) {
  const json::Value* run = value.find("run");
  if (type == "sweep_capture") {
    if (run == nullptr || !run->isString()) return "sweep_capture missing \"run\"";
    if (!numberField(value, "crash_access")) {
      return "sweep_capture missing \"crash_access\"";
    }
    if (!numberField(value, "region") || !numberField(value, "iteration")) {
      return "sweep_capture missing \"region\"/\"iteration\"";
    }
    double trials = 0;
    if (!numberField(value, "trials", &trials) || trials < 1) {
      return "sweep_capture must name at least one trial";
    }
  } else if (type == "sweep_end") {
    if (run == nullptr || !run->isString()) return "sweep_end missing \"run\"";
    double captures = 0;
    double planned = 0;
    if (!numberField(value, "captures", &captures) ||
        !numberField(value, "planned", &planned)) {
      return "sweep_end missing \"captures\"/\"planned\"";
    }
    if (captures > planned) return "sweep_end captured more points than planned";
    const json::Value* completed = value.find("completed");
    if (completed == nullptr ||
        !(completed->kind == json::Value::Kind::Bool || completed->isNumber())) {
      return "sweep_end missing \"completed\"";
    }
  }
  return {};
}

/// Per-type schema of the post-mortem scan's trace event: the fast-path
/// inconsistency scan emits one postmortem_scan per scanned range, carrying
/// its block tallies and the compare kernel that ran. skipped + compared
/// must equal the range's block count, so both tallies are required.
std::string lintPostmortemEvent(const json::Value& value, const std::string& type) {
  if (type != "postmortem_scan") return {};
  for (const char* name :
       {"blocks", "blocks_compared", "blocks_skipped", "bytes_compared"}) {
    double field = 0;
    if (!numberField(value, name, &field) || field < 0) {
      return std::string("postmortem_scan missing non-negative \"") + name + '"';
    }
  }
  const json::Value* kernel = value.find("kernel");
  if (kernel == nullptr || !kernel->isString() || kernel->string.empty()) {
    return "postmortem_scan missing \"kernel\"";
  }
  return {};
}

/// Per-type schema of the region monitor's trace event: campaigns under
/// --monitor sampled emit one region_snapshot per tracked object after the
/// golden run, carrying the sampled region count and write tallies that
/// drove the demotion decision (docs/INTERNALS.md "Adaptive region
/// monitor"). Returns an empty string when the event is well-formed (or not
/// a region event).
std::string lintRegionSnapshotEvent(const json::Value& value, const std::string& type) {
  if (type != "region_snapshot") return {};
  const json::Value* run = value.find("run");
  if (run == nullptr || !run->isString() || run->string.empty()) {
    return "region_snapshot missing \"run\"";
  }
  const json::Value* object = value.find("object");
  if (object == nullptr || !object->isString() || object->string.empty()) {
    return "region_snapshot missing \"object\"";
  }
  double regions = 0;
  if (!numberField(value, "regions", &regions) || regions < 1) {
    return "region_snapshot must carry at least one region";
  }
  for (const char* name : {"bytes", "samples", "writes", "window_writes"}) {
    double field = 0;
    if (!numberField(value, name, &field) || field < 0) {
      return std::string("region_snapshot missing non-negative \"") + name + '"';
    }
  }
  const json::Value* demoted = value.find("demoted");
  if (demoted == nullptr || demoted->kind != json::Value::Kind::Bool) {
    return "region_snapshot missing boolean \"demoted\"";
  }
  return {};
}

int lintTrace(const std::string& path, const std::vector<std::string>& requiredFields,
              bool stats) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "trace_lint: cannot open " << path << '\n';
    return 1;
  }
  std::string line;
  std::uint64_t lineNo = 0;
  std::uint64_t events = 0;
  std::map<std::string, std::uint64_t> typeCounts;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::string error;
    const auto value = json::parse(line, &error);
    if (!value) {
      std::cerr << "trace_lint: " << path << ':' << lineNo << ": " << error << '\n';
      return 1;
    }
    if (!value->isObject()) {
      std::cerr << "trace_lint: " << path << ':' << lineNo << ": not a JSON object\n";
      return 1;
    }
    const json::Value* type = value->find("type");
    if (type == nullptr || !type->isString() || type->string.empty()) {
      std::cerr << "trace_lint: " << path << ':' << lineNo << ": missing \"type\"\n";
      return 1;
    }
    const json::Value* ts = value->find("ts_ns");
    if (ts == nullptr || !ts->isNumber() || ts->number < 0) {
      std::cerr << "trace_lint: " << path << ':' << lineNo << ": missing \"ts_ns\"\n";
      return 1;
    }
    for (const auto& field : requiredFields) {
      if (value->find(field) == nullptr) {
        std::cerr << "trace_lint: " << path << ':' << lineNo << ": missing required field \""
                  << field << "\" (event type " << type->string << ")\n";
        return 1;
      }
    }
    for (const std::string& error2 : {lintSweepEvent(*value, type->string),
                                      lintPhaseEvent(*value, type->string),
                                      lintWorkerEvent(*value, type->string),
                                      lintPostmortemEvent(*value, type->string),
                                      lintRegionSnapshotEvent(*value, type->string)}) {
      if (!error2.empty()) {
        std::cerr << "trace_lint: " << path << ':' << lineNo << ": " << error2 << '\n';
        return 1;
      }
    }
    ++events;
    if (stats) ++typeCounts[type->string];
  }
  if (events == 0) {
    std::cerr << "trace_lint: " << path << " contains no events\n";
    return 1;
  }
  std::cout << path << ": " << events << " events ok\n";
  if (stats) {
    for (const auto& [type, count] : typeCounts) {
      std::cout << "  " << type << ": " << count << '\n';
    }
  }
  return 0;
}

/// nvct --status-out snapshot: one campaign_status object with
/// self-consistent tallies.
int lintStatus(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "trace_lint: cannot open " << path << '\n';
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  const auto value = json::parse(buffer.str(), &error);
  const auto fail = [&path](const std::string& what) {
    std::cerr << "trace_lint: " << path << ": " << what << '\n';
    return 1;
  };
  if (!value || !value->isObject()) {
    return fail(error.empty() ? "not a JSON object" : error);
  }
  const json::Value* type = value->find("type");
  if (type == nullptr || !type->isString() || type->string != "campaign_status") {
    return fail("\"type\" must be campaign_status");
  }
  const json::Value* app = value->find("app");
  if (app == nullptr || !app->isString() || app->string.empty()) {
    return fail("missing \"app\"");
  }
  // Shard coordinates ("i/k", "0/1" unsharded): every snapshot carries them,
  // and the remaining tallies are shard-local, so a fan-out driver can lint
  // each shard's status file against the same schema.
  const json::Value* shard = value->find("shard");
  if (shard == nullptr || !shard->isString()) {
    return fail("missing \"shard\" (\"i/k\")");
  }
  {
    const std::string& s = shard->string;
    const auto slash = s.find('/');
    bool ok = slash != std::string::npos && slash > 0 && slash + 1 < s.size() &&
              s.find_first_not_of("0123456789") == slash &&
              s.find_first_not_of("0123456789", slash + 1) == std::string::npos;
    if (ok) {
      const long index = std::stol(s.substr(0, slash));
      const long count = std::stol(s.substr(slash + 1));
      ok = count >= 1 && index >= 0 && index < count;
    }
    if (!ok) return fail("\"shard\" must be 'i/k' with 0 <= i < k");
  }
  std::map<std::string, double> fields;
  for (const char* name : {"tests", "decided", "resumed", "s1", "s2", "s3", "s4",
                           "failures", "retries", "timeouts", "queue_depth",
                           "workers", "worker_deaths", "elapsed_s",
                           "trials_per_s", "eta_s", "seq"}) {
    if (!numberField(*value, name, &fields[name])) {
      return fail(std::string("missing numeric \"") + name + '"');
    }
    if (fields[name] < 0 && std::string(name) != "eta_s") {
      return fail(std::string("negative \"") + name + '"');
    }
  }
  for (const char* name : {"interrupted", "done"}) {
    const json::Value* flag = value->find(name);
    if (flag == nullptr || flag->kind != json::Value::Kind::Bool) {
      return fail(std::string("missing boolean \"") + name + '"');
    }
  }
  const double settled =
      fields["s1"] + fields["s2"] + fields["s3"] + fields["s4"] + fields["failures"];
  if (settled != fields["decided"]) {
    return fail("s1+s2+s3+s4+failures does not equal decided");
  }
  if (fields["decided"] > fields["tests"]) {
    return fail("decided exceeds planned tests");
  }
  if (fields["resumed"] > fields["decided"]) {
    return fail("resumed exceeds decided");
  }
  std::cout << path << ": status ok (" << static_cast<std::uint64_t>(fields["decided"])
            << "/" << static_cast<std::uint64_t>(fields["tests"]) << " decided, seq "
            << static_cast<std::uint64_t>(fields["seq"]) << ")\n";
  return 0;
}

int lintMetrics(const std::string& path, const std::vector<std::string>& requiredCounters) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "trace_lint: cannot open " << path << '\n';
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  const auto value = json::parse(buffer.str(), &error);
  if (!value) {
    std::cerr << "trace_lint: " << path << ": " << error << '\n';
    return 1;
  }
  const json::Value* counters = value->isObject() ? value->find("counters") : nullptr;
  if (counters == nullptr || !counters->isObject()) {
    std::cerr << "trace_lint: " << path << ": missing \"counters\" object\n";
    return 1;
  }
  for (const auto& name : requiredCounters) {
    const json::Value* counter = counters->find(name);
    if (counter == nullptr || !counter->isNumber()) {
      std::cerr << "trace_lint: " << path << ": missing counter \"" << name << "\"\n";
      return 1;
    }
    if (counter->number <= 0) {
      std::cerr << "trace_lint: " << path << ": counter \"" << name << "\" is zero\n";
      return 1;
    }
  }
  std::cout << path << ": metrics ok (" << counters->object.size() << " counters)\n";
  return 0;
}

int lintJournal(const std::string& path,
                const std::vector<std::string>& requiredFailureKinds) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "trace_lint: cannot open " << path << '\n';
    return 1;
  }
  std::string line;
  std::uint64_t lineNo = 0;
  double tests = 0;
  bool segments = false;
  bool haveLast = false;
  double lastTrial = -1;
  std::map<std::string, std::uint64_t> failureKinds;
  // Last record kind per test index (true = trial): segment journals may
  // re-decide an index, so the tallies count the compacted view.
  std::map<std::uint64_t, bool> decided;
  const auto fail = [&path, &lineNo](const std::string& what) {
    std::cerr << "trace_lint: " << path << ':' << lineNo << ": " << what << '\n';
    return 1;
  };
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::string error;
    const auto value = json::parse(line, &error);
    if (!value || !value->isObject()) {
      return fail(error.empty() ? "not a JSON object" : error);
    }
    const json::Value* type = value->find("type");
    if (type == nullptr || !type->isString()) return fail("missing \"type\"");

    if (lineNo == 1) {
      if (type->string != "campaign_header") {
        return fail("first line must be a campaign_header");
      }
      const json::Value* app = value->find("app");
      if (app == nullptr || !app->isString() || app->string.empty()) {
        return fail("header missing \"app\"");
      }
      if (!numberField(*value, "seed")) return fail("header missing \"seed\"");
      if (!numberField(*value, "tests", &tests) || tests < 1) {
        return fail("header missing positive \"tests\"");
      }
      const json::Value* mode = value->find("mode");
      if (mode == nullptr || !mode->isString() ||
          (mode->string != "nvm" && mode->string != "coherent")) {
        return fail("header \"mode\" must be nvm or coherent");
      }
      const json::Value* fp = value->find("plan_fingerprint");
      if (fp == nullptr || !fp->isString() || fp->string.empty() ||
          fp->string.find_first_not_of("0123456789") != std::string::npos) {
        return fail("header \"plan_fingerprint\" must be a decimal string");
      }
      if (!numberField(*value, "window_accesses")) {
        return fail("header missing \"window_accesses\"");
      }
      const json::Value* format = value->find("format");
      if (format != nullptr) {
        if (!format->isString() || format->string != "segments") {
          return fail("header \"format\" must be \"segments\" when present");
        }
        segments = true;
      }
      // Shard journals (--shard i/k, docs/INTERNALS.md "Sharded campaigns")
      // carry the shard coordinates, the recomputable campaign fingerprint,
      // and the candidate list the merge needs to rebuild the CSV. The four
      // fields travel together; an unsharded header carries none of them.
      const json::Value* shards = value->find("shards");
      if (shards != nullptr) {
        double shardCount = 0;
        double shardIndex = -1;
        if (!shards->isNumber() || shards->number < 2) {
          return fail("header \"shards\" must be a shard count >= 2");
        }
        shardCount = shards->number;
        if (!numberField(*value, "shard", &shardIndex) || shardIndex < 0 ||
            shardIndex >= shardCount) {
          return fail("header \"shard\" must be in [0, shards)");
        }
        const json::Value* hash = value->find("campaign_hash");
        if (hash == nullptr || !hash->isString() || hash->string.empty() ||
            hash->string.find_first_not_of("0123456789") != std::string::npos) {
          return fail("header \"campaign_hash\" must be a decimal string");
        }
        const json::Value* objects = value->find("objects");
        if (objects == nullptr || objects->kind != json::Value::Kind::Array) {
          return fail("shard header missing \"objects\" array");
        }
        for (const json::Value& object : objects->array) {
          if (!object.isObject() || !numberField(object, "id")) {
            return fail("shard header \"objects\" entry missing numeric \"id\"");
          }
          const json::Value* name = object.find("name");
          if (name == nullptr || !name->isString() || name->string.empty()) {
            return fail("shard header \"objects\" entry missing \"name\"");
          }
        }
      } else if (value->find("shard") != nullptr ||
                 value->find("campaign_hash") != nullptr) {
        return fail("header \"shard\"/\"campaign_hash\" require \"shards\"");
      }
      continue;
    }
    if (type->string != "trial" && type->string != "trial_failure") {
      return fail("unknown record type \"" + type->string + "\"");
    }

    double trial = 0;
    if (!numberField(*value, "trial", &trial) || trial < 0) {
      return fail("missing trial index");
    }
    if (trial >= tests) return fail("trial index beyond the header's tests");
    if (!segments && haveLast && trial <= lastTrial) {
      return fail(trial == lastTrial ? "duplicate trial index"
                                     : "trial indices are not monotone");
    }
    haveLast = true;
    lastTrial = trial;
    decided[static_cast<std::uint64_t>(trial)] = type->string == "trial";
    if (!numberField(*value, "crash_access")) return fail("missing \"crash_access\"");

    if (type->string == "trial") {
      const json::Value* response = value->find("response");
      if (response == nullptr || !response->isString() ||
          (response->string != "S1" && response->string != "S2" &&
           response->string != "S3" && response->string != "S4")) {
        return fail("trial \"response\" must be S1..S4");
      }
      if (!numberField(*value, "region") ||
          !numberField(*value, "crash_iteration") ||
          !numberField(*value, "restart_iteration") ||
          !numberField(*value, "extra_iterations")) {
        return fail("trial missing iteration/region fields");
      }
      const json::Value* rates = value->find("rates");
      if (rates == nullptr || !rates->isObject()) {
        return fail("trial missing \"rates\" object");
      }
      for (const auto& [id, rate] : rates->object) {
        if (!rate.isNumber() || rate.number < 0.0 || rate.number > 1.0) {
          return fail("rate for object " + id + " outside [0, 1]");
        }
      }
    } else {
      double attempts = 0;
      if (!numberField(*value, "attempts", &attempts) || attempts < 1) {
        return fail("trial_failure missing positive \"attempts\"");
      }
      const json::Value* reason = value->find("reason");
      if (reason == nullptr || !reason->isString() || reason->string.empty()) {
        return fail("trial_failure missing \"reason\"");
      }
      const json::Value* timeout = value->find("timeout");
      if (timeout == nullptr ||
          !(timeout->kind == json::Value::Kind::Bool || timeout->isNumber())) {
        return fail("trial_failure missing \"timeout\"");
      }
      // "kind" is optional (legacy journals predate it) but must be a
      // non-empty string when present; the fork evaluator writes one of
      // exception|timeout|crashed|killed|oom|protocol.
      const json::Value* kind = value->find("kind");
      if (kind != nullptr && (!kind->isString() || kind->string.empty())) {
        return fail("trial_failure \"kind\" must be a non-empty string");
      }
      ++failureKinds[kind != nullptr ? kind->string
                                     : std::string("<absent>")];
    }
  }
  if (lineNo == 0) {
    std::cerr << "trace_lint: " << path << " is empty\n";
    return 1;
  }
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  for (const auto& [index, isTrial] : decided) {
    (void)index;
    isTrial ? ++trials : ++failures;
  }
  for (const auto& required : requiredFailureKinds) {
    if (failureKinds.find(required) == failureKinds.end()) {
      std::cerr << "trace_lint: " << path << ": no trial_failure of kind \""
                << required << "\"\n";
      return 1;
    }
  }
  std::cout << path << ": journal ok (" << trials << " trials, " << failures
            << " failures of " << static_cast<std::uint64_t>(tests)
            << " planned)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ec::CliParser cli(
      "trace_lint — validate telemetry traces (JSONL) and metrics snapshots.");
  cli.addString("trace", "", "JSONL trace file to validate");
  cli.addString("metrics", "", "metrics JSON snapshot to validate");
  cli.addString("journal", "", "campaign resume journal (JSONL) to validate");
  cli.addString("status", "", "nvct --status-out snapshot (JSON) to validate");
  cli.addString("require-field", "",
                "comma-separated fields every trace event must carry");
  cli.addString("require-counter", "",
                "comma-separated counters that must be present and non-zero");
  cli.addString("require-failure-kind", "",
                "comma-separated kinds the journal must record at least one "
                "trial_failure of (e.g. crashed,killed,oom,protocol)");
  cli.addFlag("stats", "print an event-type frequency table for the trace");
  if (!cli.parse(argc, argv)) return 0;

  try {
    const std::string tracePath = cli.getString("trace");
    const std::string metricsPath = cli.getString("metrics");
    const std::string journalPath = cli.getString("journal");
    const std::string statusPath = cli.getString("status");
    if (tracePath.empty() && metricsPath.empty() && journalPath.empty() &&
        statusPath.empty()) {
      std::cerr << "trace_lint: nothing to do "
                   "(--trace, --metrics, --journal and/or --status)\n";
      return 1;
    }
    int status = 0;
    if (!tracePath.empty()) {
      status |= lintTrace(tracePath, splitCsv(cli.getString("require-field")),
                          cli.getFlag("stats"));
    }
    if (!metricsPath.empty()) {
      status |= lintMetrics(metricsPath, splitCsv(cli.getString("require-counter")));
    }
    if (!journalPath.empty()) {
      status |= lintJournal(journalPath,
                            splitCsv(cli.getString("require-failure-kind")));
    }
    if (!statusPath.empty()) {
      status |= lintStatus(statusPath);
    }
    return status;
  } catch (const std::exception& e) {
    std::cerr << "trace_lint: " << e.what() << '\n';
    return 1;
  }
}
