// nvct — the crash-study command-line tool (the paper's open-sourced NVCT).
//
// Runs a crash-test campaign for one of the bundled benchmarks under an
// optional persistence plan, prints the human-readable post-mortem summary,
// and optionally writes the per-test CSV for external analysis.
//
//   nvct --app mg --tests 200
//   nvct --app mg --tests 200 --plan "u@main"
//   nvct --app is --tests 500 --plan "key_array+bucket_hist@main"
//        --csv-out is_campaign.csv --mode coherent
//   nvct --app kmeans --list-objects
//
// Observability (docs/OBSERVABILITY.md): --trace-out writes a JSONL event
// trace, --metrics-out a counters/histograms snapshot (including the
// per-object access/wear profile unless --profile off), --status-out keeps a
// live status snapshot fresh while the campaign runs, --log-level tunes
// stderr diagnostics, and a live progress line tracks the campaign. After a
// campaign, `nvct report` joins the journal, trace, and metrics into one
// deterministic markdown report:
//
//   nvct report --journal mg.jsonl --trace mg_trace.jsonl
//        --metrics mg_metrics.json --out mg_report.md
//
// Performance (docs/INTERNALS.md): by default one sweep run captures every
// pending crash point and the restarts pipeline behind it (--sweep off
// restores the one-crashing-run-per-trial path; results are byte-identical),
// the apps' range accesses take the block-granular bulk path (--bulk off
// restores the per-element scalar path; results are byte-identical), and the
// post-mortem inconsistency scan walks a dirty-block index with a vectorized
// compare kernel (--scan off restores the probe-every-level scalar walk;
// results are byte-identical).
//
// Fault tolerance (docs/ROBUSTNESS.md): trials are isolated (a throwing
// trial becomes a reported TrialFailure, bounded by --max-trial-failures),
// a watchdog cancels hung trials (--trial-timeout-ms), --journal records
// decided trials crash-safely and --resume replays such a journal, and
// SIGINT/SIGTERM drain the in-flight trials then exit with code 130 and a
// partial summary.
//
// Exit codes: 0 success, 1 error, 130 interrupted (SIGINT/SIGTERM).
#include <fstream>
#include <iostream>
#include <sstream>

#include <string_view>

#include "easycrash/apps/registry.hpp"
#include "easycrash/common/cli.hpp"
#include "easycrash/crash/campaign.hpp"
#include "easycrash/crash/flight_report.hpp"
#include "easycrash/crash/plan_spec.hpp"
#include "easycrash/crash/report.hpp"
#include "easycrash/crash/resilience.hpp"
#include "easycrash/crash/shard.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/telemetry/log.hpp"
#include "easycrash/telemetry/metrics.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace ec = easycrash;

namespace {

constexpr int kExitInterrupted = 130;

// `nvct report`: deterministic post-run analysis over a finished campaign's
// outputs. Dispatched on argv[1] before the campaign CLI (CliParser has no
// positional arguments).
int reportMain(int argc, char** argv) {
  ec::CliParser cli(
      "nvct report — render a deterministic markdown report from a finished "
      "campaign's journal (+ optional trace and metrics snapshot).\n"
      "Give --journal more than once to render the merged view of a sharded "
      "campaign's journals (validated like `nvct merge`).\n"
      "Byte-identical output for identical inputs.");
  cli.addStringList("journal", "campaign journal (required; repeat for shards)");
  cli.addString("trace", "", "JSONL trace for phase-latency percentiles");
  cli.addString("metrics", "", "metrics snapshot for the access/wear heatmap");
  cli.addString("out", "", "write the report here (default: stdout)");
  if (!cli.parse(argc, argv)) return 0;

  try {
    const auto& journals = cli.getStringList("journal");
    if (journals.empty()) {
      throw std::runtime_error("nvct report requires --journal");
    }
    std::string report;
    if (journals.size() == 1) {
      ec::crash::FlightReportInputs inputs;
      inputs.journalPath = journals.front();
      inputs.tracePath = cli.getString("trace");
      inputs.metricsPath = cli.getString("metrics");
      report = ec::crash::renderFlightReport(inputs);
    } else {
      const auto merge = ec::crash::mergeShardJournals(journals);
      report = ec::crash::renderFlightReport(
          ec::crash::toReplay(merge), cli.getString("trace"),
          cli.getString("metrics"));
    }
    const std::string outPath = cli.getString("out");
    if (outPath.empty()) {
      std::cout << report;
    } else {
      ec::crash::atomicWriteFile(outPath, report);
      std::cout << "report written to " << outPath << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "nvct report: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

// `nvct merge`: fold k shard journals back into the single-machine
// campaign's artifacts. Every output is byte-identical to what the
// equivalent unsharded run writes (docs/INTERNALS.md "Sharded campaigns").
int mergeMain(int argc, char** argv) {
  ec::CliParser cli(
      "nvct merge — fold the shard journals of one `--shard i/k` campaign "
      "into canonical single-campaign artifacts.\n"
      "The merged journal, CSV and report are byte-identical to the "
      "unsharded run's outputs; journals may be given in any order, and "
      "partial (interrupted) shard journals are accepted. Journals drawn "
      "for a different campaign (seed, plan, app, window, or a tampered "
      "campaign fingerprint) are rejected loudly.");
  cli.addStringList("journal", "a shard journal (give one per shard)");
  cli.addString("journal-out", "", "write the merged compact journal here");
  cli.addString("csv-out", "", "write the merged per-test CSV here");
  cli.addString("metrics-out", "",
                "write the deterministic merged metrics projection (JSON); "
                "a pure function of the decided set, identical for any "
                "shard layout that decided the same trials");
  cli.addString("report-out", "", "render the merged flight report here");
  cli.addString("trace", "", "JSONL trace for the report's phase latencies");
  cli.addString("metrics", "", "metrics snapshot for the report's heatmap");
  if (!cli.parse(argc, argv)) return 0;

  try {
    const auto& journals = cli.getStringList("journal");
    if (journals.empty()) {
      throw std::runtime_error("nvct merge requires at least one --journal");
    }
    const auto merge = ec::crash::mergeShardJournals(journals);
    const std::size_t decided = merge.trials.size() + merge.failures.size();
    std::cout << "merged " << journals.size() << " journal(s), "
              << merge.shardsSeen.size() << "/" << merge.shardCount
              << " shards seen, " << decided << "/" << merge.header.tests
              << " trials decided"
              << (merge.complete() ? "" : " (incomplete)") << '\n';

    const std::string journalOut = cli.getString("journal-out");
    if (!journalOut.empty()) {
      ec::crash::atomicWriteFile(journalOut, ec::crash::renderMergedJournal(merge));
      std::cout << "merged journal written to " << journalOut << '\n';
    }
    const std::string csvOut = cli.getString("csv-out");
    if (!csvOut.empty()) {
      ec::crash::atomicWriteFile(csvOut, ec::crash::renderMergedCsv(merge));
      std::cout << "merged per-test CSV written to " << csvOut << '\n';
    }
    const std::string metricsOut = cli.getString("metrics-out");
    if (!metricsOut.empty()) {
      ec::crash::atomicWriteFile(metricsOut, ec::crash::renderMergedMetrics(merge));
      std::cout << "merged metrics projection written to " << metricsOut << '\n';
    }
    const std::string reportOut = cli.getString("report-out");
    if (!reportOut.empty()) {
      const std::string report = ec::crash::renderFlightReport(
          ec::crash::toReplay(merge), cli.getString("trace"),
          cli.getString("metrics"));
      ec::crash::atomicWriteFile(reportOut, report);
      std::cout << "merged report written to " << reportOut << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << (std::string_view(e.what()).rfind("nvct merge:", 0) == 0
                      ? ""
                      : "nvct merge: ")
              << e.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string_view(argv[1]) == "report") {
    return reportMain(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::string_view(argv[1]) == "merge") {
    return mergeMain(argc - 1, argv + 1);
  }
  ec::CliParser cli(
      "nvct — crash-test campaigns on the simulated NVM machine.\n"
      "Plan spec grammar: obj[+obj...]@(main|R<k>)[:everyN], comma-separated;\n"
      "'candidates' expands to every candidate object.\n"
      "Exit codes: 0 success, 1 error, 130 interrupted (SIGINT/SIGTERM).");
  cli.addString("app", "mg", "benchmark to study (see --list-apps)");
  cli.addInt("tests", 200, "number of crash tests");
  cli.addInt("seed", 1, "campaign master seed");
  cli.addString("plan", "none", "persistence plan spec");
  cli.addString("mode", "nvm", "snapshot mode: nvm (NVCT) or coherent (verified)");
  cli.addInt("threads", 1, "campaign worker threads (0 = hardware concurrency)");
  cli.addString("shard", "0/1",
                "run shard i of a k-way campaign split ('i/k', zero-based): "
                "this process draws the identical golden run and crash "
                "points but executes only the trials with index % k == i; "
                "fold the k shard journals with `nvct merge` — the merged "
                "journal/CSV/report are byte-identical to the unsharded run");
  cli.addString("sweep", "on",
                "single-sweep evaluator: capture every crash point in one "
                "crashing run and pipeline the restarts (on|off; off = the "
                "per-trial path, byte-identical results)");
  cli.addString("bulk", "on",
                "block-granular bulk path for the apps' range accesses "
                "(on|off; off = per-element scalar path, byte-identical "
                "results)");
  cli.addString("scan", "on",
                "post-mortem scan fast path: dirty-block index + vectorized "
                "compare (on|off; off = probe-every-level scalar walk, "
                "byte-identical results)");
  cli.addString("monitor", "full",
                "access monitoring: 'full' tracks every byte's value (the "
                "default; byte-identical to campaigns before the monitor "
                "existed) or 'sampled' — a region monitor rides the golden "
                "run and demotes cold large objects out of value tracking, "
                "the unlock for large-footprint campaigns "
                "(docs/INTERNALS.md); results stay byte-identical");
  cli.addInt("scale", 1,
             "problem-size multiplier for cg, mg and kmeans (grid edge / "
             "point count); other apps only accept 1");
  cli.addString("csv-out", "", "write the per-test CSV to this file");
  cli.addString("trace-out", "", "write a JSONL telemetry trace to this file");
  cli.addString("metrics-out", "", "write the final metrics snapshot (JSON)");
  cli.addString("status-out", "",
                "atomically rewrite a live campaign status snapshot (JSON) "
                "on every interval and after the final drain");
  cli.addInt("status-interval-ms", 1000, "status snapshot interval");
  cli.addString("profile", "on",
                "per-object access/wear profiling (on|off; exported as the "
                "'profile' section of --metrics-out)");
  cli.addString("log-level", "", "stderr log level: error|warn|info|debug|trace");
  cli.addFlag("no-progress", "suppress the live campaign progress line");
  cli.addString("journal", "", "append decided trials to this crash-safe JSONL journal");
  cli.addString("resume", "", "replay this journal; only missing trials are re-run");
  cli.addInt("journal-flush-every", 8, "journal flush cadence in decided trials");
  cli.addInt("max-trial-failures", 25,
             "abort once more than this many trials fail (-1 = unlimited)");
  cli.addInt("trial-retries", 1, "retries per failing trial before recording it");
  cli.addInt("trial-timeout-ms", 0,
             "per-trial watchdog deadline (0 = golden-run multiple)");
  cli.addDouble("timeout-golden-multiple", 20.0,
                "watchdog deadline as a multiple of the golden run "
                "(used when --trial-timeout-ms is 0; 0 disables the watchdog)");
  cli.addInt("retry-backoff-ms", 25,
             "base backoff before a trial retry, doubled per attempt with "
             "deterministic jitter (0 = retry immediately)");
  cli.addInt("retry-backoff-max-ms", 2000, "retry backoff cap");
  cli.addFlag("no-isolate",
              "legacy all-or-nothing trials: first trial exception aborts "
              "(implies --isolation none)");
  cli.addString("isolation", "fork",
                "trial evaluator isolation: 'fork' runs every crashing run "
                "and restart in a pre-forked worker process (a trial that "
                "segfaults, OOMs or hangs becomes a TrialFailure); 'none' "
                "runs trials in-process");
  cli.addString("inject", "",
                "deterministic fault injection: segv|wild-write|oom|hang"
                ":<access-index> kills the worker at exactly that tracked "
                "access of every crashing run (requires --isolation fork)");
  cli.addInt("stop-after", 0,
             "test hook: request a graceful stop after N new trials (0 = off)");
  cli.addFlag("list-apps", "list the bundled benchmarks and exit");
  cli.addFlag("list-objects", "list the app's data objects and exit");
  if (!cli.parse(argc, argv)) return 0;

  try {
    const std::string logLevel = cli.getString("log-level");
    if (!logLevel.empty()) {
      const auto parsed = ec::telemetry::parseLogLevel(logLevel);
      if (!parsed) throw std::runtime_error("unknown --log-level " + logLevel);
      ec::telemetry::setLogLevel(*parsed);
    }
    if (cli.getFlag("list-apps")) {
      for (const auto& entry : ec::apps::allBenchmarks()) {
        std::cout << entry.name << "  —  " << entry.description << '\n';
      }
      return 0;
    }

    const auto& entry = ec::apps::findBenchmark(cli.getString("app"));
    const int scale = static_cast<int>(cli.getInt("scale"));
    const auto factory = ec::apps::scaledBenchmarkFactory(entry.name, scale);

    // A setup-only runtime resolves object names for the plan spec.
    ec::runtime::Runtime probe;
    auto probeApp = factory();
    probeApp->setup(probe);

    if (cli.getFlag("list-objects")) {
      for (const auto& object : probe.objects()) {
        std::cout << object.name << "  " << object.bytes << " bytes"
                  << (object.candidate ? "  [candidate]" : "")
                  << (object.readOnly ? "  [read-only]" : "") << '\n';
      }
      return 0;
    }

    ec::crash::CampaignConfig config;
    config.numTests = static_cast<int>(cli.getInt("tests"));
    config.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    config.plan = ec::crash::parsePlanSpec(cli.getString("plan"), probe);
    // Scaled instances get their own label: their golden runs (and journals)
    // are different campaigns from the scale-1 app.
    config.appLabel =
        scale == 1 ? entry.name : entry.name + "@s" + std::to_string(scale);
    config.threads = static_cast<int>(cli.getInt("threads"));
    config.progress = !cli.getFlag("no-progress");
    const std::string shard = cli.getString("shard");
    {
      const auto slash = shard.find('/');
      std::size_t usedI = 0;
      std::size_t usedK = 0;
      int index = -1;
      int count = 0;
      try {
        if (slash == std::string::npos || slash == 0 ||
            slash + 1 >= shard.size()) {
          throw std::invalid_argument("no slash");
        }
        index = std::stoi(shard.substr(0, slash), &usedI);
        count = std::stoi(shard.substr(slash + 1), &usedK);
      } catch (const std::exception&) {
        throw std::runtime_error("--shard must be 'i/k' (e.g. 0/4)");
      }
      if (usedI != slash || usedK != shard.size() - slash - 1 || count < 1 ||
          index < 0 || index >= count) {
        throw std::runtime_error(
            "--shard must be 'i/k' with 0 <= i < k (got " + shard + ")");
      }
      config.shard.index = index;
      config.shard.count = count;
    }
    const std::string mode = cli.getString("mode");
    if (mode == "coherent") {
      config.mode = ec::crash::SnapshotMode::Coherent;
    } else if (mode != "nvm") {
      throw std::runtime_error("--mode must be 'nvm' or 'coherent'");
    }
    const std::string sweep = cli.getString("sweep");
    if (sweep == "off") {
      config.sweep = false;
    } else if (sweep != "on") {
      throw std::runtime_error("--sweep must be 'on' or 'off'");
    }
    const std::string bulk = cli.getString("bulk");
    if (bulk == "off") {
      config.bulk = false;
    } else if (bulk != "on") {
      throw std::runtime_error("--bulk must be 'on' or 'off'");
    }
    const std::string scan = cli.getString("scan");
    if (scan == "off") {
      config.scan = false;
    } else if (scan != "on") {
      throw std::runtime_error("--scan must be 'on' or 'off'");
    }
    const std::string monitor = cli.getString("monitor");
    if (monitor == "sampled") {
      config.monitor.mode = ec::crash::MonitorMode::Sampled;
    } else if (monitor != "full") {
      throw std::runtime_error("--monitor must be 'full' or 'sampled'");
    }
    const std::string profile = cli.getString("profile");
    if (profile == "off") {
      config.profile = false;
    } else if (profile != "on") {
      throw std::runtime_error("--profile must be 'on' or 'off'");
    }
    config.statusPath = cli.getString("status-out");
    config.statusIntervalMs = static_cast<int>(cli.getInt("status-interval-ms"));
    if (config.statusIntervalMs <= 0) {
      throw std::runtime_error("--status-interval-ms must be positive");
    }

    auto& res = config.resilience;
    res.isolate = !cli.getFlag("no-isolate");
    res.maxFailures = static_cast<int>(cli.getInt("max-trial-failures"));
    res.maxRetries = static_cast<int>(cli.getInt("trial-retries"));
    res.trialTimeoutMs = static_cast<std::uint64_t>(cli.getInt("trial-timeout-ms"));
    res.goldenTimeoutMultiple = cli.getDouble("timeout-golden-multiple");
    res.journalPath = cli.getString("journal");
    res.resumePath = cli.getString("resume");
    res.journalFlushEvery = static_cast<int>(cli.getInt("journal-flush-every"));
    res.stopAfterTrials = static_cast<int>(cli.getInt("stop-after"));
    res.retryBackoffMs = static_cast<std::uint64_t>(cli.getInt("retry-backoff-ms"));
    res.retryBackoffMaxMs =
        static_cast<std::uint64_t>(cli.getInt("retry-backoff-max-ms"));
    const std::string isolation = cli.getString("isolation");
    if (isolation == "fork") {
      // --no-isolate keeps its legacy all-or-nothing meaning: trials run
      // in-process and the first exception aborts the campaign.
      res.isolation = res.isolate ? ec::crash::IsolationMode::Fork
                                  : ec::crash::IsolationMode::None;
    } else if (isolation == "none") {
      res.isolation = ec::crash::IsolationMode::None;
    } else {
      throw std::runtime_error("--isolation must be 'fork' or 'none'");
    }
    const std::string inject = cli.getString("inject");
    if (!inject.empty()) {
      if (res.isolation != ec::crash::IsolationMode::Fork) {
        throw std::runtime_error(
            "--inject requires --isolation fork (the fault kills the process "
            "that runs the trial)");
      }
      const auto colon = inject.find(':');
      if (colon == std::string::npos || colon + 1 >= inject.size()) {
        throw std::runtime_error("--inject must be <kind>:<access-index>");
      }
      const std::string kind = inject.substr(0, colon);
      if (kind == "segv") {
        config.inject.kind = ec::crash::FaultPlan::Kind::Segv;
      } else if (kind == "wild-write") {
        config.inject.kind = ec::crash::FaultPlan::Kind::WildWrite;
      } else if (kind == "oom") {
        config.inject.kind = ec::crash::FaultPlan::Kind::Oom;
      } else if (kind == "hang") {
        config.inject.kind = ec::crash::FaultPlan::Kind::Hang;
      } else {
        throw std::runtime_error(
            "--inject kind must be segv|wild-write|oom|hang");
      }
      std::size_t used = 0;
      const std::string idx = inject.substr(colon + 1);
      config.inject.accessIndex = std::stoull(idx, &used);
      if (used != idx.size() || config.inject.accessIndex == 0) {
        throw std::runtime_error("--inject access index must be a positive "
                                 "integer");
      }
    }

    ec::crash::installStopSignalHandlers();

    const std::string tracePath = cli.getString("trace-out");
    if (!tracePath.empty()) {
      auto& sink = ec::telemetry::TraceSink::instance();
      sink.setCommonField("app", entry.name);
      sink.openFile(tracePath);
    }

    std::cout << "app: " << config.appLabel << "  plan: "
              << ec::crash::formatPlanSpec(config.plan, probe) << "  mode: " << mode
              << "  tests: " << config.numTests;
    if (config.shard.active()) {
      std::cout << "  shard: " << config.shard.index << '/'
                << config.shard.count;
    }
    std::cout << '\n';
    const auto campaign = ec::crash::CampaignRunner(factory, config).run();
    ec::crash::writeCampaignSummary(campaign, std::cout);

    // Output files are replaced atomically (temp + fsync + rename), so an
    // interrupted or crashed nvct never leaves a truncated CSV/metrics file
    // where a previous good one stood.
    const std::string csvPath = cli.getString("csv-out");
    if (!csvPath.empty()) {
      std::ostringstream os;
      ec::crash::writeCampaignCsv(campaign, os);
      ec::crash::atomicWriteFile(csvPath, os.str());
      std::cout << "per-test CSV written to " << csvPath << '\n';
    }

    if (!tracePath.empty()) {
      ec::telemetry::TraceSink::instance().close();
      std::cout << "trace written to " << tracePath << '\n';
    }
    const std::string metricsPath = cli.getString("metrics-out");
    if (!metricsPath.empty()) {
      std::ostringstream os;
      std::string profileSection;
      if (!campaign.profile.empty()) {
        profileSection =
            "\"profile\": " + ec::crash::campaignProfileJson(campaign.profile);
      }
      ec::telemetry::MetricsRegistry::instance().writeJson(os, profileSection);
      ec::crash::atomicWriteFile(metricsPath, os.str());
      std::cout << "metrics snapshot written to " << metricsPath << '\n';
    }

    if (campaign.interrupted) {
      std::cout << "interrupted — resume with --resume "
                << (res.journalPath.empty() ? std::string("<journal>")
                                            : res.journalPath)
                << '\n';
      return kExitInterrupted;
    }
  } catch (const std::exception& e) {
    std::cerr << "nvct: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
